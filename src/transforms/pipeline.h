/**
 * @file
 * The canonical lowering pipeline (paper Figure 3): from the stencil
 * dialect produced by the frontends down to csl-ir, with per-stage
 * verification. Options expose the ablation toggles of §5.7.
 */

#ifndef WSC_TRANSFORMS_PIPELINE_H
#define WSC_TRANSFORMS_PIPELINE_H

#include <cstdint>

#include "ir/pass.h"

namespace wsc::transforms {

/** Pipeline-wide options (ablations and tuning knobs). */
struct PipelineOptions
{
    bool enableStencilInlining = true;
    bool enableVarithFusion = true;
    bool enableCoeffPromotion = true;
    bool enableOneShotReduction = true;
    bool enableFmacFusion = true;
    /** Per-PE bytes allowed for one receive buffer (chunking policy). */
    int64_t recvBufferBudgetBytes = 32 * 1024;
    /** Force a chunk count (0 = derive from the budget). */
    int64_t forceNumChunks = 0;
    /** Verify the IR after every pass. */
    bool verifyEach = true;
    /**
     * Dump the worklist driver's per-pattern hit/miss counters to
     * stderr after the pipeline runs (also enabled by setting the
     * WSC_PATTERN_STATS environment variable).
     */
    bool dumpPatternStats = false;

    /**
     * Stable hash over every option that can change the emitted
     * artifact. Folded into the compile service's cache key alongside
     * the module fingerprint (ir/module_hash.h) so two requests for the
     * same module under different ablation toggles or chunking budgets
     * never collide. Observability-only knobs (verifyEach,
     * dumpPatternStats) are deliberately excluded.
     */
    uint64_t fingerprint() const;
};

/** Build the full stencil-to-csl pipeline. */
ir::PassManager buildPipeline(const PipelineOptions &options = {});

/**
 * Run the full pipeline on a module (stencil dialect in, csl-ir out).
 * Never aborts on malformed input: diagnostics are captured in the
 * result, the run stops at the first failing pass, and the module is
 * left intact (partially lowered) for post-mortem printing. Check
 * `result.succeeded` (or `if (result)`) before using the module.
 */
ir::PipelineResult runPipeline(ir::Operation *module,
                               const PipelineOptions &options = {});

} // namespace wsc::transforms

#endif // WSC_TRANSFORMS_PIPELINE_H
