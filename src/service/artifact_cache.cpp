#include "service/artifact_cache.h"

#include <algorithm>
#include <mutex>

namespace wsc::service {

ArtifactCache::ArtifactCache(size_t capacity)
{
    capacity = std::max<size_t>(capacity, 1);
    size_t shardCount = std::min<size_t>(8, capacity);
    shards_.reserve(shardCount);
    for (size_t i = 0; i < shardCount; ++i) {
        auto shard = std::make_unique<Shard>();
        // Distribute the bound; the first (capacity % shardCount)
        // shards take the remainder so the shard capacities sum to
        // exactly `capacity`.
        shard->capacity =
            capacity / shardCount + (i < capacity % shardCount ? 1 : 0);
        shards_.push_back(std::move(shard));
    }
}

ArtifactCache::Shard &
ArtifactCache::shardFor(const CacheKey &key)
{
    return *shards_[KeyHash{}(key) % shards_.size()];
}

std::shared_ptr<const CompileArtifact>
ArtifactCache::lookup(const CacheKey &key)
{
    Shard &shard = shardFor(key);
    uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    it->second->lastUsed.store(now, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->artifact;
}

void
ArtifactCache::insert(const CacheKey &key,
                      std::shared_ptr<const CompileArtifact> artifact)
{
    Shard &shard = shardFor(key);
    uint64_t now = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        // Concurrent miss on the same key: both workers built the same
        // content; keep the newer pointer, no eviction needed.
        it->second->artifact = std::move(artifact);
        it->second->lastUsed.store(now, std::memory_order_relaxed);
        return;
    }
    if (shard.map.size() >= shard.capacity) {
        // Evict the stalest entry of this shard. Shards hold at most a
        // few hundred entries, so the scan is cheap next to a compile.
        auto victim = shard.map.begin();
        uint64_t oldest = victim->second->lastUsed.load(
            std::memory_order_relaxed);
        for (auto cand = shard.map.begin(); cand != shard.map.end();
             ++cand) {
            uint64_t used =
                cand->second->lastUsed.load(std::memory_order_relaxed);
            if (used < oldest) {
                oldest = used;
                victim = cand;
            }
        }
        shard.map.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.emplace(key,
                      std::make_unique<Entry>(std::move(artifact), now));
    insertions_.fetch_add(1, std::memory_order_relaxed);
}

size_t
ArtifactCache::size() const
{
    size_t n = 0;
    for (const auto &shard : shards_) {
        std::shared_lock<std::shared_mutex> lock(shard->mu);
        n += shard->map.size();
    }
    return n;
}

CacheStats
ArtifactCache::stats() const
{
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace wsc::service
