#include "service/workload_requests.h"

#include <utility>

namespace wsc::service {

CompileRequest
benchmarkRequest(const fe::Benchmark &bench, bool simulate, int nx, int ny)
{
    CompileRequest request;
    request.name = bench.name;
    // The Program (expression trees, grid, field names) is tiny and
    // context-free; each job re-emits it into its own leased context.
    fe::Program program = bench.program;
    request.build = [program](ir::Context &ctx) {
        return program.emit(ctx);
    };
    if (simulate) {
        request.sim.run = true;
        request.sim.nx = nx;
        request.sim.ny = ny;
        for (size_t f = 0; f < bench.program.numFields(); ++f)
            request.sim.fields.push_back(bench.program.fieldName(f));
        fe::InitFn init = bench.init;
        request.sim.init = [init](int field, int x, int y, int z) {
            return init(field, x, y, z);
        };
    }
    return request;
}

CompileRequest
fortranRequest(std::string name, std::string source,
               fe::FortranKernelConfig config)
{
    CompileRequest request;
    request.name = std::move(name);
    request.build = [source = std::move(source),
                     config](ir::Context &ctx) {
        fe::FortranParseResult parsed =
            fe::parseFortranStencilChecked(source, config);
        if (!parsed) {
            ctx.diagnostics().report(std::move(parsed.diagnostic));
            return ir::OwningOp();
        }
        return parsed.program->emit(ctx);
    };
    return request;
}

std::vector<CompileRequest>
allWorkloadRequests(int64_t nx, int64_t ny, int64_t steps, bool simulate)
{
    // Reduced z extents (vs the paper's 450-900) keep a full five-way
    // round affordable for stress tests and latency benches while still
    // exercising every frontend and pipeline path.
    std::vector<fe::Benchmark> benches;
    benches.push_back(fe::makeJacobian(nx, ny, steps, 24));
    benches.push_back(fe::makeDiffusion(nx, ny, steps, 16));
    benches.push_back(fe::makeAcoustic(nx, ny, steps, 24));
    benches.push_back(fe::makeSeismic(nx, ny, steps, 20));
    benches.push_back(fe::makeUvkbe(nx, ny, 24));

    std::vector<CompileRequest> requests;
    requests.reserve(benches.size());
    for (const fe::Benchmark &bench : benches)
        requests.push_back(benchmarkRequest(bench, simulate,
                                            static_cast<int>(nx),
                                            static_cast<int>(ny)));
    return requests;
}

} // namespace wsc::service
