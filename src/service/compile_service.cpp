#include "service/compile_service.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "dialects/all.h"
#include "interp/csl_interpreter.h"
#include "ir/module_hash.h"
#include "ir/verifier.h"
#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::service {

namespace {

uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
hashString(uint64_t h, const std::string &s)
{
    for (unsigned char c : s)
        h = (h ^ c) * 0x100000001b3ULL;
    return mix64(h);
}

uint64_t
hashDouble(uint64_t h, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return mix64(h ^ bits);
}

/** Every ArchParams field the emitted artifact or timing depends on. */
uint64_t
hashArch(const wse::ArchParams &arch)
{
    uint64_t h = 0x61726368ULL; // "arch"
    h = hashString(h, arch.name);
    h = mix64(h ^ static_cast<uint64_t>(arch.fabricWidth));
    h = mix64(h ^ static_cast<uint64_t>(arch.fabricHeight));
    h = hashDouble(h, arch.clockGHz);
    h = mix64(h ^ static_cast<uint64_t>(arch.peMemoryBytes));
    h = mix64(h ^ static_cast<uint64_t>(arch.readBytesPerCycle));
    h = mix64(h ^ static_cast<uint64_t>(arch.writeBytesPerCycle));
    h = mix64(h ^ arch.dsdSetupCycles);
    h = hashDouble(h, arch.f32ElemsPerCycle);
    h = mix64(h ^ static_cast<uint64_t>(arch.waveletBytes));
    h = mix64(h ^ arch.hopCycles);
    h = mix64(h ^ static_cast<uint64_t>(arch.linkWaveletsPerCycle));
    h = mix64(h ^ arch.taskActivateCycles);
    h = mix64(h ^ (arch.switchRequiresSelfTransmit ? 1 : 0));
    h = mix64(h ^ arch.switchReconfigCycles);
    return h;
}

uint64_t
hashSimRequest(const SimRequest &sim)
{
    if (!sim.run)
        return 0x6e6f73696dULL; // "nosim"
    uint64_t h = 0x73696dULL; // "sim"
    h = mix64(h ^ static_cast<uint64_t>(sim.nx));
    h = mix64(h ^ static_cast<uint64_t>(sim.ny));
    h = mix64(h ^ sim.cycleBudget);
    // Field inits are deliberately not keyed — see SimRequest's doc.
    return h;
}

/** One-line summary of a failed pipeline for CompileReply::error. */
std::string
summarize(const ir::PipelineResult &result)
{
    const ir::Diagnostic *err = result.firstError();
    std::string out = result.failedPass.empty()
                          ? std::string("compile failed")
                          : "failed in pass '" + result.failedPass + "'";
    if (err) {
        out += ": ";
        out += err->message;
    }
    return out;
}

} // namespace

CacheKey
makeCacheKey(const ir::ModuleFingerprint &fp, const CompileRequest &request)
{
    uint64_t opts = request.options.fingerprint();
    opts = mix64(opts ^ hashArch(request.arch));
    opts = mix64(opts ^ hashSimRequest(request.sim));
    CacheKey key;
    key.lo = mix64(fp.lo ^ opts);
    key.hi = mix64(fp.hi ^ (opts * 0xda942042e4dd58b5ULL));
    return key;
}

CompileService::CompileService(ServiceConfig config)
    : config_(std::move(config)),
      pool_(config_.contextSetup
                ? config_.contextSetup
                : [](ir::Context &ctx) {
                      dialects::registerAllDialects(ctx);
                  }),
      cache_(config_.cacheCapacity)
{
    int threads = std::max(1, config_.threads);
    workers_.reserve(threads);
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompileService::~CompileService()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::future<CompileReply>
CompileService::submit(CompileRequest request)
{
    Job job;
    job.request = std::move(request);
    job.enqueued = std::chrono::steady_clock::now();
    std::future<CompileReply> future = job.promise.get_future();
    {
        std::lock_guard<std::mutex> lock(mu_);
        WSC_ASSERT(!stopping_, "submit on a stopping CompileService");
        queue_.push_back(std::move(job));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    cv_.notify_one();
    return future;
}

void
CompileService::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        auto picked = std::chrono::steady_clock::now();
        CompileReply reply = runJob(std::move(job.request));
        reply.queueMicros =
            std::chrono::duration<double, std::micro>(picked -
                                                      job.enqueued)
                .count();
        reply.workMicros =
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - picked)
                .count();
        completed_.fetch_add(1, std::memory_order_relaxed);
        (reply.ok ? succeeded_ : failed_)
            .fetch_add(1, std::memory_order_relaxed);
        job.promise.set_value(std::move(reply));
    }
}

CompileReply
CompileService::runJob(CompileRequest request)
{
    CompileReply reply;
    reply.name = request.name;

    // Destruction order matters: the module (arena-backed) must die
    // before the collector pops its handler, which must happen before
    // the lease resets the context.
    ContextPool::Lease ctx = pool_.acquire();
    {
        ir::DiagnosticCollector collector(*ctx);
        ir::OwningOp module;
        const char *stage = "frontend";
        try {
            module = request.build(*ctx);
        } catch (ir::DiagnosedError &e) {
            if (e.hasDiagnostic())
                ctx->diagnostics().report(e.takeDiagnostic());
            // else: already reported through the engine.
        } catch (const FatalError &e) {
            ctx->diagnostics().report(
                ir::Diagnostic(ir::Severity::Error, e.what()));
        } catch (const PanicError &e) {
            // Invariant violation inside a frontend: same conversion the
            // pass manager applies — an "internal error" diagnostic, not
            // a dead worker.
            ctx->diagnostics().report(ir::Diagnostic(
                ir::Severity::Error,
                std::string("internal error: ") + e.what()));
        }

        if (module && config_.verifyFrontendOutput &&
            ir::failed(ir::verify(module.get()))) {
            stage = "verify";
            module = ir::OwningOp();
        }

        if (!module) {
            reply.pipeline.succeeded = false;
            reply.pipeline.failedPass = stage;
            reply.pipeline.diagnostics = collector.take();
            for (ir::Diagnostic &d : reply.pipeline.diagnostics)
                if (d.pass.empty())
                    d.pass = stage;
            reply.error = summarize(reply.pipeline);
            return reply;
        }

        ir::ModuleFingerprint fp = ir::fingerprintModule(module.get());
        reply.key = makeCacheKey(fp, request);

        if (!request.bypassCache) {
            std::shared_ptr<const CompileArtifact> hit =
                cache_.lookup(reply.key);
            // A hit recorded without simulation cannot serve a request
            // that wants one; recompile and overwrite it.
            if (hit && (!request.sim.run || hit->sim.simulated)) {
                reply.ok = true;
                reply.cacheHit = true;
                reply.artifact = std::move(hit);
                return reply;
            }
        }

        reply.pipeline =
            transforms::runPipeline(module.get(), request.options);
        if (!reply.pipeline) {
            reply.error = summarize(reply.pipeline);
            return reply;
        }

        auto artifact = std::make_shared<CompileArtifact>();
        artifact->moduleFp = fp;
        artifact->optionsHash = request.options.fingerprint();
        artifact->csl = codegen::emitCsl(module.get());

        if (request.sim.run) {
            wse::Simulator sim(request.arch, request.sim.nx,
                               request.sim.ny);
            interp::CslProgramInstance instance(sim, module.get());
            for (size_t f = 0; f < request.sim.fields.size(); ++f) {
                int fi = static_cast<int>(f);
                auto init = request.sim.init;
                instance.setFieldInit(
                    request.sim.fields[f],
                    [init, fi](int x, int y, int z) {
                        return init(fi, x, y, z);
                    });
            }
            instance.configure();
            instance.launch();
            artifact->sim.simulated = true;
            artifact->sim.nx = request.sim.nx;
            artifact->sim.ny = request.sim.ny;
            artifact->sim.cycleBudget = request.sim.cycleBudget;
            artifact->sim.finalCycle = sim.run(request.sim.cycleBudget);
            artifact->sim.unblocks = instance.unblockCount();
        }

        if (!request.bypassCache)
            cache_.insert(reply.key, artifact);
        reply.ok = true;
        reply.artifact = std::move(artifact);
    }
    return reply;
}

ServiceStats
CompileService::stats() const
{
    ServiceStats s;
    s.submitted = submitted_.load(std::memory_order_relaxed);
    s.completed = completed_.load(std::memory_order_relaxed);
    s.succeeded = succeeded_.load(std::memory_order_relaxed);
    s.failed = failed_.load(std::memory_order_relaxed);
    s.cache = cache_.stats();
    s.contextsCreated = pool_.created();
    s.contextsRecycled = pool_.recycled();
    return s;
}

} // namespace wsc::service
