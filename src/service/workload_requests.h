/**
 * @file
 * Ready-made CompileRequests for the five paper workloads and for raw
 * Fortran sources — the request vocabulary shared by the service tests,
 * the throughput benchmark and the example driver.
 */

#ifndef WSC_SERVICE_WORKLOAD_REQUESTS_H
#define WSC_SERVICE_WORKLOAD_REQUESTS_H

#include <string>
#include <vector>

#include "frontends/benchmarks.h"
#include "frontends/fortran_frontend.h"
#include "service/compile_service.h"

namespace wsc::service {

/**
 * Request compiling `bench` (the symbolic frontend re-emits its Program
 * in the job's context). With `simulate`, the job also runs the
 * compiled program on an nx x ny fabric with the benchmark's initial
 * conditions and records the final cycle in the artifact.
 */
CompileRequest benchmarkRequest(const fe::Benchmark &bench,
                                bool simulate = false, int nx = 0,
                                int ny = 0);

/**
 * Request parsing Fortran-style source through the checked frontend.
 * Malformed source fails the job with the frontend's located
 * "fortran:line:col" diagnostic — it never throws out of the worker.
 */
CompileRequest fortranRequest(std::string name, std::string source,
                              fe::FortranKernelConfig config);

/**
 * All five paper workloads (Jacobian, diffusion, acoustic, seismic,
 * UVKBE) at an nx x ny grid with reduced z extents and `steps`
 * timesteps — the standard service test/bench mix.
 */
std::vector<CompileRequest> allWorkloadRequests(int64_t nx, int64_t ny,
                                                int64_t steps,
                                                bool simulate = false);

} // namespace wsc::service

#endif // WSC_SERVICE_WORKLOAD_REQUESTS_H
