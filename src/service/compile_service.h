/**
 * @file
 * wsc::service::CompileService — the concurrent compile-and-simulate
 * front door of the toolchain (ROADMAP: compiler-as-a-service).
 *
 * Architecture (docs/architecture.md §7):
 *
 *  - A fixed pool of worker threads drains a FIFO job queue. Each job
 *    owns exactly one ir::Context for its duration, leased from a
 *    recycling ContextPool: Context::reset() drops the previous job's
 *    IR wholesale (arena rewind, intern pools cleared) while keeping
 *    the arena's pages and the op registry, so steady-state jobs pay
 *    no page faults and no dialect re-registration.
 *
 *  - Finished artifacts (emitted CSL bytes + simulation config) go
 *    into a content-addressed ArtifactCache keyed by the structural
 *    module fingerprint (ir/module_hash.h) folded with the pipeline-
 *    option, architecture and simulation-request hashes. A repeat
 *    request never reruns the pipeline: it takes a shared-lock lookup
 *    and copies a shared_ptr.
 *
 *  - Failure is a reply, not a crash (the PR 7 contract, proven here
 *    under concurrency): a malformed request fails its own job with
 *    the rendered diagnostics carried in CompileReply::pipeline, while
 *    the worker thread and its recycled context stay fully reusable —
 *    the next job on the same context must produce byte-identical
 *    output to a cold compile, which `ctest -L service` asserts.
 */

#ifndef WSC_SERVICE_COMPILE_SERVICE_H
#define WSC_SERVICE_COMPILE_SERVICE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ir/pass.h"
#include "service/artifact_cache.h"
#include "service/context_pool.h"
#include "transforms/pipeline.h"
#include "wse/arch_params.h"

namespace wsc::service {

/**
 * Optional simulation of the compiled program. When `run` is set, a
 * cache miss simulates after emission and records the final cycle in
 * the artifact's SimConfig; a hit returns the recorded value. Field
 * initial conditions are *not* part of the cache key: the simulator's
 * timing model has no data-dependent control flow, so the cycle count
 * depends only on the program and fabric — the same property the
 * golden cycle locks rely on.
 */
struct SimRequest
{
    bool run = false;
    /** Fabric dimensions to instantiate. */
    int nx = 0;
    int ny = 0;
    /** Event budget for Simulator::run. */
    uint64_t cycleBudget = 4000000000ULL;
    /** Field names to initialize, in index order. */
    std::vector<std::string> fields;
    /** Initial condition: value of fields[field] at (x, y, z). */
    std::function<float(int field, int x, int y, int z)> init;
};

/** One compile job. */
struct CompileRequest
{
    /** Label carried through to the reply and stats. */
    std::string name;
    /**
     * Frontend: build the module in the job's context. Report failure
     * by emitting a diagnostic through the context's engine and
     * returning an empty OwningOp (or throwing ir::DiagnosedError).
     */
    std::function<ir::OwningOp(ir::Context &)> build;
    transforms::PipelineOptions options;
    wse::ArchParams arch = wse::ArchParams::wse3();
    SimRequest sim;
    /** Skip lookup *and* insertion — cold-compile measurement hook. */
    bool bypassCache = false;
};

/** Outcome of one job. */
struct CompileReply
{
    /** Compile (and simulation, when requested) succeeded. */
    bool ok = false;
    /** Served from the artifact cache without running the pipeline. */
    bool cacheHit = false;
    std::string name;
    CacheKey key;
    /** The artifact; null when !ok. */
    std::shared_ptr<const CompileArtifact> artifact;
    /**
     * The pipeline outcome, diagnostics included (PR 7's
     * PipelineResult, plumbed through the service verbatim). On
     * frontend/verifier failures `failedPass` is "frontend"/"verify".
     * Untouched (succeeded, empty) for cache hits.
     */
    ir::PipelineResult pipeline;
    /** One-line failure summary; empty when ok. */
    std::string error;
    /** Time spent queued before a worker picked the job up. */
    double queueMicros = 0.0;
    /** Time on the worker (frontend + pipeline + emission + sim). */
    double workMicros = 0.0;

    explicit operator bool() const { return ok; }
};

/** Service-wide configuration. */
struct ServiceConfig
{
    /** Worker threads (= max jobs in flight). */
    int threads = 1;
    /** Artifact-cache capacity bound (entries). */
    size_t cacheCapacity = 1024;
    /** Run the IR verifier on frontend output before the pipeline. */
    bool verifyFrontendOutput = true;
    /**
     * Per-context setup for fresh pool contexts; defaults to
     * dialects::registerAllDialects when left empty.
     */
    std::function<void(ir::Context &)> contextSetup;
};

/** Monotonic service counters (one snapshot; relaxed reads). */
struct ServiceStats
{
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t succeeded = 0;
    uint64_t failed = 0;
    CacheStats cache;
    uint64_t contextsCreated = 0;
    uint64_t contextsRecycled = 0;
};

/** Thread-pool compile service; see the file comment. */
class CompileService
{
  public:
    explicit CompileService(ServiceConfig config = {});
    /** Drains nothing: pending jobs are completed before join. */
    ~CompileService();
    CompileService(const CompileService &) = delete;
    CompileService &operator=(const CompileService &) = delete;

    /** Enqueue a job; the future resolves when a worker finishes it. */
    std::future<CompileReply> submit(CompileRequest request);

    /** Convenience: submit and wait. */
    CompileReply
    compile(CompileRequest request)
    {
        return submit(std::move(request)).get();
    }

    ServiceStats stats() const;

    /** The artifact cache (test introspection). */
    ArtifactCache &cache() { return cache_; }
    /** The context pool (test introspection). */
    ContextPool &contextPool() { return pool_; }

    int threads() const { return static_cast<int>(workers_.size()); }

  private:
    struct Job
    {
        CompileRequest request;
        std::promise<CompileReply> promise;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop();
    CompileReply runJob(CompileRequest request);

    ServiceConfig config_;
    ContextPool pool_;
    ArtifactCache cache_;

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<Job> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;

    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> succeeded_{0};
    std::atomic<uint64_t> failed_{0};
};

/**
 * Fold a module fingerprint with the request-level hashes (pipeline
 * options, architecture, simulation request) into the cache key.
 * Exposed for tests that predict keys.
 */
CacheKey makeCacheKey(const ir::ModuleFingerprint &fp,
                      const CompileRequest &request);

} // namespace wsc::service

#endif // WSC_SERVICE_COMPILE_SERVICE_H
