/**
 * @file
 * Content-addressed cache of compile artifacts for the compile service.
 *
 * Key: the 128-bit structural fingerprint of the frontend-emitted module
 * (ir/module_hash.h) folded with the pipeline-option and request-level
 * hashes — everything that can change the artifact. Value: the emitted
 * CSL bytes plus the simulation configuration/result recorded when the
 * artifact was first built. The byte-exact CSL emitter and the golden
 * cycle locks make cache correctness directly testable: a hit must be
 * byte-identical (and cycle-identical) to a cold compile, which
 * `ctest -L service` asserts.
 *
 * Concurrency: the table is sharded by key; each shard holds a
 * std::shared_mutex, so the hot path — repeat requests hitting the
 * cache — takes only a shared (reader) lock and copies a shared_ptr.
 * Artifacts are immutable after insertion; eviction under the capacity
 * bound is approximate-LRU via a relaxed per-entry access tick, so hits
 * never take the exclusive lock.
 */

#ifndef WSC_SERVICE_ARTIFACT_CACHE_H
#define WSC_SERVICE_ARTIFACT_CACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "codegen/csl_emitter.h"
#include "ir/module_hash.h"

namespace wsc::service {

/** Simulation request/result recorded alongside a cached artifact. */
struct SimConfig
{
    /** Whether the artifact was simulated when first compiled. */
    bool simulated = false;
    /** Fabric dimensions the simulation ran on. */
    int nx = 0;
    int ny = 0;
    /** Event budget passed to Simulator::run. */
    uint64_t cycleBudget = 0;
    /** Final simulated cycle (the golden-lock quantity). */
    uint64_t finalCycle = 0;
    /** PEs that returned control to the host. */
    uint64_t unblocks = 0;
};

/** Immutable compile result shared between cache and replies. */
struct CompileArtifact
{
    codegen::EmittedCsl csl;
    SimConfig sim;
    /** Fingerprint of the module this artifact was compiled from. */
    ir::ModuleFingerprint moduleFp;
    /** The folded options/request hash that completed the key. */
    uint64_t optionsHash = 0;
};

/** Full cache key: module fingerprint x request options. */
struct CacheKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator==(const CacheKey &) const = default;
};

/** Cache hit/miss/eviction counters (monotonic, relaxed). */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
};

/** Sharded, capacity-bounded, approximate-LRU artifact cache. */
class ArtifactCache
{
  public:
    /**
     * `capacity` bounds the total number of cached artifacts. The bound
     * is distributed over the shards, so an individual shard may evict
     * while another still has room; the global count never exceeds
     * `capacity`. Capacity values below the shard count reduce the
     * shard count (capacity 1 = one shard, strict LRU of one).
     */
    explicit ArtifactCache(size_t capacity = 1024);

    /** Lock-free-ish read path: shared lock + shared_ptr copy. */
    std::shared_ptr<const CompileArtifact> lookup(const CacheKey &key);

    /**
     * Publish an artifact (exclusive lock on one shard). Re-inserting
     * an existing key replaces the value — harmless because both were
     * built from identical content. Evicts the least-recently-used
     * entry of the shard when it is full.
     */
    void insert(const CacheKey &key,
                std::shared_ptr<const CompileArtifact> artifact);

    /** Entries currently resident (sums shard sizes; racy under load). */
    size_t size() const;

    CacheStats stats() const;

  private:
    struct Entry
    {
        std::shared_ptr<const CompileArtifact> artifact;
        /** Global tick of the last lookup/insert (approximate LRU). */
        std::atomic<uint64_t> lastUsed{0};

        Entry() = default;
        Entry(std::shared_ptr<const CompileArtifact> a, uint64_t tick)
            : artifact(std::move(a)), lastUsed(tick)
        {
        }
    };

    struct KeyHash
    {
        size_t
        operator()(const CacheKey &k) const
        {
            return static_cast<size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
        }
    };

    struct Shard
    {
        mutable std::shared_mutex mu;
        std::unordered_map<CacheKey, std::unique_ptr<Entry>, KeyHash> map;
        size_t capacity = 0;
    };

    Shard &shardFor(const CacheKey &key);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<uint64_t> tick_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> insertions_{0};
    std::atomic<uint64_t> evictions_{0};
};

} // namespace wsc::service

#endif // WSC_SERVICE_ARTIFACT_CACHE_H
