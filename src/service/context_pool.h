/**
 * @file
 * Recycling pool of ir::Context instances for the compile service.
 *
 * A full Context construction pays arena page allocation, intern-pool
 * bucket growth and dialect registration; a service handling a stream
 * of requests would pay it per job. The pool instead hands out
 * contexts that have already been through compiles: Context::reset()
 * drops the previous job's IR wholesale (arena rewind, pools cleared)
 * while keeping the arena's pages and the op registry, so a recycled
 * context starts its next compile with warm memory and registered
 * dialects.
 *
 * Thread safety: acquire/release are mutex-protected (a pop/push of a
 * pointer — nanoseconds next to a compile); each leased context is then
 * used by exactly one worker thread, which is what keeps the
 * single-threaded Context contract intact under a concurrent service.
 */

#ifndef WSC_SERVICE_CONTEXT_POOL_H
#define WSC_SERVICE_CONTEXT_POOL_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "ir/context.h"

namespace wsc::service {

/** Mutex-protected stack of recycled contexts. */
class ContextPool
{
  public:
    /**
     * `setup` runs once per freshly constructed context (typically
     * dialects::registerAllDialects); recycled contexts skip it because
     * reset() preserves the op registry.
     */
    explicit ContextPool(std::function<void(ir::Context &)> setup)
        : setup_(std::move(setup))
    {
    }

    /** RAII lease: returns (and resets) the context on destruction. */
    class Lease
    {
      public:
        Lease() = default;
        Lease(ContextPool *pool, std::unique_ptr<ir::Context> ctx)
            : pool_(pool), ctx_(std::move(ctx))
        {
        }
        Lease(Lease &&other) noexcept
            : pool_(other.pool_), ctx_(std::move(other.ctx_))
        {
            other.pool_ = nullptr;
        }
        Lease &
        operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                pool_ = other.pool_;
                ctx_ = std::move(other.ctx_);
                other.pool_ = nullptr;
            }
            return *this;
        }
        ~Lease() { release(); }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;

        ir::Context &operator*() const { return *ctx_; }
        ir::Context *operator->() const { return ctx_.get(); }
        ir::Context *get() const { return ctx_.get(); }
        explicit operator bool() const { return ctx_ != nullptr; }

      private:
        void
        release()
        {
            if (pool_ && ctx_)
                pool_->put(std::move(ctx_));
            pool_ = nullptr;
        }

        ContextPool *pool_ = nullptr;
        std::unique_ptr<ir::Context> ctx_;
    };

    /** Pop a recycled context, or construct (and set up) a fresh one. */
    Lease
    acquire()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!free_.empty()) {
                std::unique_ptr<ir::Context> ctx = std::move(free_.back());
                free_.pop_back();
                ++recycled_;
                return Lease(this, std::move(ctx));
            }
            ++created_;
        }
        auto ctx = std::make_unique<ir::Context>();
        if (setup_)
            setup_(*ctx);
        return Lease(this, std::move(ctx));
    }

    /// @name Telemetry
    /// @{
    /** Contexts constructed because the pool was empty. */
    uint64_t
    created() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return created_;
    }
    /** Leases served from the recycle stack. */
    uint64_t
    recycled() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return recycled_;
    }
    /** Contexts currently idle in the pool. */
    size_t
    idle() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return free_.size();
    }
    /// @}

  private:
    friend class Lease;

    /** Reset the finished job's context and push it for reuse. */
    void
    put(std::unique_ptr<ir::Context> ctx)
    {
        ctx->reset();
        std::lock_guard<std::mutex> lock(mu_);
        free_.push_back(std::move(ctx));
    }

    std::function<void(ir::Context &)> setup_;
    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ir::Context>> free_;
    uint64_t created_ = 0;
    uint64_t recycled_ = 0;
};

} // namespace wsc::service

#endif // WSC_SERVICE_CONTEXT_POOL_H
