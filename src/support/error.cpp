#include "support/error.h"

namespace wsc {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace wsc
