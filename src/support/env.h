/**
 * @file
 * Environment-variable helpers shared by the debugging/diagnostic knobs
 * (WSC_PATTERN_STATS, WSC_UPDATE_GOLDEN, WSC_DIAG_ROWS, ...), so every
 * knob parses values the same way.
 */

#ifndef WSC_SUPPORT_ENV_H
#define WSC_SUPPORT_ENV_H

#include <cstdint>
#include <string>

namespace wsc {

/** True when env var `name` is set to a non-empty value other than "0". */
bool envFlag(const char *name);

/** Unsigned value of env var `name`; `fallback` when unset or invalid. */
uint64_t envU64(const char *name, uint64_t fallback);

/** String value of env var `name`; empty when unset. */
std::string envStr(const char *name);

} // namespace wsc

#endif // WSC_SUPPORT_ENV_H
