/**
 * @file
 * Error-reporting helpers, following the gem5 fatal()/panic() convention:
 * fatal() is for user errors (bad input, invalid configuration) and panic()
 * is for internal invariant violations, i.e. bugs in this library.
 */

#ifndef WSC_SUPPORT_ERROR_H
#define WSC_SUPPORT_ERROR_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace wsc {

/** Exception thrown for user-level errors (invalid input or configuration). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Exception thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Throw a FatalError with the given message. */
[[noreturn]] void fatal(const std::string &msg);

/** Throw a PanicError with the given message. */
[[noreturn]] void panic(const std::string &msg);

/** Build a message from stream-formatted parts. */
template <typename... Args>
std::string
strcat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/**
 * Assert an internal invariant; panics with location info on failure.
 * The message argument may be an ostream `<<` chain.
 */
#define WSC_ASSERT(cond, msg)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            std::ostringstream wscAssertOs_;                                 \
            wscAssertOs_ << __FILE__ << ":" << __LINE__ << ": assertion `"   \
                         << #cond << "` failed: " << msg;                    \
            ::wsc::panic(wscAssertOs_.str());                                \
        }                                                                    \
    } while (0)

} // namespace wsc

#endif // WSC_SUPPORT_ERROR_H
