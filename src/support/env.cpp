#include "support/env.h"

#include <cstdlib>
#include <string>

namespace wsc {

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || v[0] == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0')
        return fallback;
    return static_cast<uint64_t>(parsed);
}

std::string
envStr(const char *name)
{
    const char *v = std::getenv(name);
    return v == nullptr ? std::string() : std::string(v);
}

} // namespace wsc
