/**
 * @file
 * The csl-wrapper dialect (paper §4.2): packages program-wide parameters,
 * the layout metaprogram, and the PE program together, mirroring CSL's
 * staged compilation (the layout file is executed at compile time to
 * specialize per-PE programs).
 *
 * csl_wrapper.module has two regions:
 *   region 0 — layout: block args (x, y, width, height); computes per-PE
 *     parameters and yields them;
 *   region 1 — program: block args are the module parameters (as declared
 *     by the `params` attribute) followed by the values yielded by the
 *     layout region.
 */

#ifndef WSC_DIALECTS_CSL_WRAPPER_H
#define WSC_DIALECTS_CSL_WRAPPER_H

#include <cstdint>
#include <string>
#include <vector>

#include "dialects/common.h"

namespace wsc::dialects::csl_wrapper {

inline const ir::OpId kModule = ir::OpId::get("csl_wrapper.module");
inline const ir::OpId kImport = ir::OpId::get("csl_wrapper.import");
inline const ir::OpId kParam = ir::OpId::get("csl_wrapper.param");
inline const ir::OpId kYield = ir::OpId::get("csl_wrapper.yield");

/** A named compile-time module parameter. */
struct Param
{
    std::string name;
    int64_t value = 0;
};

void registerDialect(ir::Context &ctx);

/**
 * Create a csl_wrapper.module of the given fabric extent with the given
 * program-wide parameters. Both regions get an empty entry block; the
 * layout block receives (x, y, width, height) i16 arguments, the program
 * block one i16 argument per parameter.
 */
ir::Operation *createModule(ir::OpBuilder &b, int64_t width, int64_t height,
                            const std::vector<Param> &params,
                            const std::string &programName);

ir::Block *layoutBlock(ir::Operation *moduleOp);
ir::Block *programBlock(ir::Operation *moduleOp);

/** Decode the params attribute. */
std::vector<Param> moduleParams(ir::Operation *moduleOp);
/** Fabric extent (width, height). */
std::pair<int64_t, int64_t> moduleExtent(ir::Operation *moduleOp);

/** csl_wrapper.import of a CSL library into the layout region. */
ir::Value createImport(ir::OpBuilder &b, const std::string &module,
                       const std::vector<std::pair<std::string, ir::Value>>
                           &fields);

/** csl_wrapper.yield terminator. */
ir::Operation *createYield(ir::OpBuilder &b,
                           const std::vector<ir::Value> &values);

} // namespace wsc::dialects::csl_wrapper

#endif // WSC_DIALECTS_CSL_WRAPPER_H
