/**
 * @file
 * The csl-ir dialect (paper §4.3): a direct re-implementation of a large
 * subset of the Cerebras CSL programming language. Constructs present in
 * CSL are represented 1:1 so that a printer can emit CSL source, and so
 * that the interpreter can execute the same IR on the simulated WSE.
 *
 * Key concepts mirrored from CSL:
 *  - modules (program and layout, reflecting staged compilation),
 *  - comptime params,
 *  - functions and tasks (data / control / local — software actors),
 *  - module-level variables (actor state shared between tasks),
 *  - Data Structure Descriptors (DSDs) and the DSD compute builtins
 *    (@fadds, @fsubs, @fmuls, @fmovs, @fmacs),
 *  - task activation and the memcpy host interface,
 *  - the chunked communication entry point of the runtime library (§5.6).
 */

#ifndef WSC_DIALECTS_CSL_H
#define WSC_DIALECTS_CSL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dialects/common.h"

namespace wsc::dialects::csl {

/// @name Module structure
/// @{
inline const ir::OpId kModule = ir::OpId::get("csl.module");
inline const ir::OpId kParam = ir::OpId::get("csl.param");
inline const ir::OpId kImportModule = ir::OpId::get("csl.import_module");
inline const ir::OpId kMemberCall = ir::OpId::get("csl.member_call");
/// @}

/// @name Functions, tasks and control
/// @{
inline const ir::OpId kFunc = ir::OpId::get("csl.func");
inline const ir::OpId kTask = ir::OpId::get("csl.task");
inline const ir::OpId kReturn = ir::OpId::get("csl.return");
inline const ir::OpId kCall = ir::OpId::get("csl.call");
inline const ir::OpId kActivate = ir::OpId::get("csl.activate");
/// @}

/// @name Module-level state
/// @{
inline const ir::OpId kVariable = ir::OpId::get("csl.variable");
inline const ir::OpId kLoadVar = ir::OpId::get("csl.load_var");
inline const ir::OpId kStoreVar = ir::OpId::get("csl.store_var");
inline const ir::OpId kAddressOf = ir::OpId::get("csl.addressof");
/// @}

/// @name DSDs and compute builtins
/// @{
inline const ir::OpId kGetMemDsd = ir::OpId::get("csl.get_mem_dsd");
inline const ir::OpId kSetDsdBaseAddr = ir::OpId::get("csl.set_dsd_base_addr");
inline const ir::OpId kIncrementDsdOffset = ir::OpId::get("csl.increment_dsd_offset");
inline const ir::OpId kSetDsdLength = ir::OpId::get("csl.set_dsd_length");
inline const ir::OpId kFadds = ir::OpId::get("csl.fadds");
inline const ir::OpId kFsubs = ir::OpId::get("csl.fsubs");
inline const ir::OpId kFmuls = ir::OpId::get("csl.fmuls");
inline const ir::OpId kFmovs = ir::OpId::get("csl.fmovs");
inline const ir::OpId kFmacs = ir::OpId::get("csl.fmacs");
/// @}

/// @name Communication and host interface
/// @{
inline const ir::OpId kCommsExchange = ir::OpId::get("csl.comms_exchange");
inline const ir::OpId kExport = ir::OpId::get("csl.export");
inline const ir::OpId kUnblockCmdStream = ir::OpId::get("csl.unblock_cmd_stream");
/// @}

/// @name Layout metaprogram
/// @{
inline const ir::OpId kSetRectangle = ir::OpId::get("csl.set_rectangle");
inline const ir::OpId kSetTileCode = ir::OpId::get("csl.set_tile_code");
/// @}

void registerDialect(ir::Context &ctx);

/// @name Types
/// @{
/** DSD type; kind is one of mem1d_dsd, mem4d_dsd, fabin_dsd, fabout_dsd. */
ir::Type getDsdType(ir::Context &ctx, const std::string &kind = "mem1d_dsd");
bool isDsdType(ir::Type t);
/** Pointer to a (possibly array) value, modelling CSL [*]T pointers. */
ir::Type getPtrType(ir::Context &ctx, ir::Type pointee);
bool isPtrType(ir::Type t);
ir::Type ptrPointeeType(ir::Type t);
/** Result of importing a module at comptime. */
ir::Type getComptimeStructType(ir::Context &ctx);
ir::Type getColorType(ir::Context &ctx);
/// @}

/// @name Module structure builders
/// @{
/** Create a csl.module of kind "program" or "layout". */
ir::Operation *createModule(ir::OpBuilder &b, const std::string &kind,
                            const std::string &name);
ir::Block *moduleBody(ir::Operation *moduleOp);

/** Comptime param declaration; result is the param value. */
ir::Value createParam(ir::OpBuilder &b, const std::string &name,
                      ir::Type type, std::optional<int64_t> defaultValue);

/** Import a CSL library module at comptime. */
ir::Value createImportModule(ir::OpBuilder &b, const std::string &module,
                             const std::vector<std::pair<std::string,
                                                         ir::Value>> &fields
                             = {});

/** Call a member function of an imported module. */
ir::Operation *createMemberCall(ir::OpBuilder &b, ir::Value moduleStruct,
                                const std::string &member,
                                const std::vector<ir::Value> &args,
                                const std::vector<ir::Type> &results = {});
/// @}

/// @name Function / task builders
/// @{
/** Create a csl.func; entry block args match `inputs`. */
ir::Operation *createFunc(ir::OpBuilder &b, const std::string &name,
                          const std::vector<ir::Type> &inputs = {},
                          const std::vector<ir::Type> &results = {});

/**
 * Create a csl.task. Kind is "data", "control" or "local"; `id` is the
 * task ID (for local tasks) or the color (for data/control tasks).
 * `argTypes` describes the wavelet payload for data tasks.
 */
ir::Operation *createTask(ir::OpBuilder &b, const std::string &name,
                          const std::string &kind, int64_t id,
                          const std::vector<ir::Type> &argTypes = {});

ir::Block *calleeBody(ir::Operation *funcOrTask);

ir::Operation *createReturn(ir::OpBuilder &b,
                            const std::vector<ir::Value> &values = {});
ir::Operation *createCall(ir::OpBuilder &b, const std::string &callee,
                          const std::vector<ir::Value> &operands = {},
                          const std::vector<ir::Type> &results = {});
/** Activate a local task by symbol name. */
ir::Operation *createActivate(ir::OpBuilder &b, const std::string &task);
/// @}

/// @name Module state builders
/// @{
/**
 * Declare a module-level variable. For arrays pass a memref type; for
 * scalars an int/float type; for symbolic pointers a csl.ptr type.
 */
ir::Operation *createVariable(ir::OpBuilder &b, const std::string &name,
                              ir::Type type,
                              ir::Attribute init = ir::Attribute());

ir::Value createLoadVar(ir::OpBuilder &b, const std::string &name,
                        ir::Type type);
ir::Operation *createStoreVar(ir::OpBuilder &b, const std::string &name,
                              ir::Value value);
/** Pointer to a module-level variable (CSL &var). */
ir::Value createAddressOf(ir::OpBuilder &b, const std::string &name,
                          ir::Type ptrType);
/// @}

/// @name DSD builders
/// @{
/**
 * Build a mem1d DSD over a module-level array variable (or over the
 * buffer a ptr variable currently points at when `viaPtr` is set):
 * `length` elements starting at `offset` with `stride`.
 */
ir::Value createGetMemDsd(ir::OpBuilder &b, const std::string &var,
                          int64_t offset, int64_t length, int64_t stride = 1,
                          bool viaPtr = false);

/** DSD with the same shape but shifted base offset (dynamic). */
ir::Value createIncrementDsdOffset(ir::OpBuilder &b, ir::Value dsd,
                                   ir::Value offsetElems);

/** DSD compute builtins. Operands may be DSDs or f32 scalars. */
ir::Operation *createBuiltin(ir::OpBuilder &b, const std::string &name,
                             const std::vector<ir::Value> &operands);
/// @}

/// @name Communication / host builders
/// @{
/** Parameters of a chunked exchange (see comms/star_comm.h). */
struct CommsExchangeSpec
{
    std::string recvCallback; ///< invoked per received chunk
    std::string doneCallback; ///< invoked when the exchange completes
    /** Module variable receiving landed chunks (library-owned). */
    std::string recvBufferName = "recv_buffer";
    /** Remote accesses (dx, dy), in canonical section order. */
    std::vector<std::pair<int64_t, int64_t>> accesses;
    int64_t numChunks = 1;
    int64_t pattern = 1;      ///< star-stencil radius
    int64_t zSize = 0;        ///< elements per column
    int64_t trimFirst = 0;    ///< leading elements omitted from sends
    int64_t trimLast = 0;     ///< trailing elements omitted from sends
    /** Per-access coefficients promoted into the comm path (or empty). */
    std::vector<double> coeffs;
};

/** Start an asynchronous chunked exchange of `sendBuf` (a DSD). */
ir::Operation *createCommsExchange(ir::OpBuilder &b, ir::Value sendBuf,
                                   const CommsExchangeSpec &spec);

/** Decode a csl.comms_exchange op back into its spec. */
CommsExchangeSpec commsExchangeSpec(ir::Operation *op);

ir::Operation *createExport(ir::OpBuilder &b, const std::string &name,
                            const std::string &kind);
ir::Operation *createUnblockCmdStream(ir::OpBuilder &b);
/// @}

} // namespace wsc::dialects::csl

#endif // WSC_DIALECTS_CSL_H
