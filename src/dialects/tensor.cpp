#include "dialects/tensor.h"

#include "support/error.h"

namespace wsc::dialects::tensor {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("tensor"))
        return;
    registerSimpleOp(ctx, kEmpty, {.numOperands = 0, .numResults = 1});
    registerSimpleOp(ctx, kInsertSlice, {
        .numOperands = 3,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (op->result(0).type() != op->operand(1).type())
                return "insert_slice result must match dest type";
            if (!ir::isIndex(op->operand(2).type()))
                return "insert_slice offset must be index-typed";
            return "";
        },
    });
    registerSimpleOp(ctx, kExtractSlice,
                     {.numOperands = 1, .numResults = 1});
}

ir::Value
createEmpty(ir::OpBuilder &b, ir::Type tensorType)
{
    WSC_ASSERT(ir::isTensor(tensorType), "tensor.empty requires tensor type");
    return b.create(kEmpty, {}, {tensorType})->result();
}

ir::Value
createInsertSlice(ir::OpBuilder &b, ir::Value source, ir::Value dest,
                  ir::Value offset, int64_t size)
{
    return b.create(kInsertSlice, {source, dest, offset},
                    {dest.type()},
                    {{"static_size", ir::getIntAttr(b.context(), size)}})
        ->result();
}

ir::Value
createExtractSlice(ir::OpBuilder &b, ir::Value source, int64_t offset,
                   int64_t size)
{
    ir::Context &ctx = b.context();
    ir::Type resultType =
        ir::getTensorType(ctx, {size}, ir::elementTypeOf(source.type()));
    return b.create(kExtractSlice, {source}, {resultType},
                    {{"static_offset", ir::getIntAttr(ctx, offset)},
                     {"static_size", ir::getIntAttr(ctx, size)}})
        ->result();
}

} // namespace wsc::dialects::tensor
