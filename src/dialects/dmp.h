/**
 * @file
 * The dmp (distributed-memory parallelism) dialect from Bisbas et al.,
 * reused unchanged for the WSE: dmp.swap declares the halo exchanges that
 * must complete before a stencil.apply can run.
 */

#ifndef WSC_DIALECTS_DMP_H
#define WSC_DIALECTS_DMP_H

#include <cstdint>
#include <vector>

#include "dialects/common.h"

namespace wsc::dialects::dmp {

inline const ir::OpId kSwap = ir::OpId::get("dmp.swap");

/** One halo exchange with a neighbour at grid offset (dx, dy). */
struct Exchange
{
    int64_t dx = 0;
    int64_t dy = 0;
    /** Halo depth in grid points along the exchange direction. */
    int64_t width = 1;

    bool operator==(const Exchange &other) const = default;
};

void registerDialect(ir::Context &ctx);

/**
 * Create dmp.swap on a temp value: declares that before consuming the
 * result, the listed exchanges must complete on a (nx, ny) PE grid.
 */
ir::Value createSwap(ir::OpBuilder &b, ir::Value input,
                     const std::vector<Exchange> &swaps, int64_t nx,
                     int64_t ny);

/** Decode the swaps attribute. */
std::vector<Exchange> swapExchanges(ir::Operation *swapOp);

/** Decode the grid topology attribute (nx, ny). */
std::pair<int64_t, int64_t> swapTopology(ir::Operation *swapOp);

} // namespace wsc::dialects::dmp

#endif // WSC_DIALECTS_DMP_H
