/**
 * @file
 * The scf dialect: structured control flow (for / if / yield). The
 * timestep loop that must later be recast into the WSE task graph is
 * represented as an scf.for.
 */

#ifndef WSC_DIALECTS_SCF_H
#define WSC_DIALECTS_SCF_H

#include "dialects/common.h"

namespace wsc::dialects::scf {

inline const ir::OpId kFor = ir::OpId::get("scf.for");
inline const ir::OpId kIf = ir::OpId::get("scf.if");
inline const ir::OpId kYield = ir::OpId::get("scf.yield");

void registerDialect(ir::Context &ctx);

/**
 * Create an scf.for loop. Operands are (lb, ub, step, iterInits...); the
 * body block receives (iv, iterArgs...) and must be terminated with an
 * scf.yield of the next iteration values. Results are the final values of
 * the iteration arguments.
 */
ir::Operation *createFor(ir::OpBuilder &b, ir::Value lb, ir::Value ub,
                         ir::Value step,
                         const std::vector<ir::Value> &iterInits = {});

/** The loop body block. */
ir::Block *forBody(ir::Operation *forOp);
/** The induction variable. */
ir::Value forInductionVar(ir::Operation *forOp);
/** Body block arguments corresponding to the iteration values. */
std::vector<ir::Value> forIterArgs(ir::Operation *forOp);
/** Operands corresponding to the initial iteration values. */
std::vector<ir::Value> forIterInits(ir::Operation *forOp);

/** Create an scf.if with a then and (optional) else region. */
ir::Operation *createIf(ir::OpBuilder &b, ir::Value condition,
                        const std::vector<ir::Type> &resultTypes = {},
                        bool withElse = true);

ir::Block *ifThenBlock(ir::Operation *ifOp);
ir::Block *ifElseBlock(ir::Operation *ifOp);

/** Create scf.yield. */
ir::Operation *createYield(ir::OpBuilder &b,
                           const std::vector<ir::Value> &values = {});

} // namespace wsc::dialects::scf

#endif // WSC_DIALECTS_SCF_H
