/**
 * @file
 * Shared helpers for dialect registration and op verification.
 */

#ifndef WSC_DIALECTS_COMMON_H
#define WSC_DIALECTS_COMMON_H

#include <string>

#include "ir/builder.h"
#include "ir/context.h"
#include "ir/operation.h"

namespace wsc::dialects {

/** Structural expectations shared by most ops. */
struct SimpleOpSpec
{
    int numOperands = -1;   ///< exact count, -1 = any
    int minOperands = -1;   ///< minimum count (used when numOperands == -1)
    int numResults = -1;    ///< exact count, -1 = any
    int numRegions = 0;     ///< exact region count
    bool isTerminator = false;
    /** Extra op-specific check run after the structural ones. */
    std::function<std::string(ir::Operation *)> extraVerify;
};

/** Register an op enforcing the structural spec above. */
void registerSimpleOp(ir::Context &ctx, ir::OpId id, SimpleOpSpec spec);

/** True when `op` has the given interned identity. */
inline bool
isa(ir::Operation *op, ir::OpId id)
{
    return op && op->is(id);
}

} // namespace wsc::dialects

#endif // WSC_DIALECTS_COMMON_H
