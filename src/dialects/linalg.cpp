#include "dialects/linalg.h"

#include "support/error.h"

namespace wsc::dialects::linalg {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("linalg"))
        return;
    for (ir::OpId name : {kAdd, kSub, kMul, kDiv})
        registerSimpleOp(ctx, name, {.numOperands = 3, .numResults = 0});
    registerSimpleOp(ctx, kFill, {.numOperands = 2, .numResults = 0});
    registerSimpleOp(ctx, kCopy, {.numOperands = 2, .numResults = 0});
    registerSimpleOp(ctx, kFmac, {.numOperands = 4, .numResults = 0});
}

ir::Operation *
createBinary(ir::OpBuilder &b, const std::string &name, ir::Value lhs,
             ir::Value rhs, ir::Value out)
{
    return b.create(name, {lhs, rhs, out}, {});
}

ir::Operation *
createFill(ir::OpBuilder &b, ir::Value scalar, ir::Value out)
{
    return b.create(kFill, {scalar, out}, {});
}

ir::Operation *
createCopy(ir::OpBuilder &b, ir::Value source, ir::Value out)
{
    return b.create(kCopy, {source, out}, {});
}

ir::Operation *
createFmac(ir::OpBuilder &b, ir::Value addend, ir::Value mulend,
           ir::Value scalar, ir::Value out)
{
    return b.create(kFmac, {addend, mulend, scalar, out}, {});
}

bool
isLinalgOp(ir::Operation *op)
{
    ir::OpId n = op->opId();
    return n == kAdd || n == kSub || n == kMul || n == kDiv || n == kFill ||
           n == kCopy || n == kFmac;
}

int
flopsPerElement(ir::Operation *op)
{
    ir::OpId n = op->opId();
    if (n == kFmac)
        return 2;
    if (n == kAdd || n == kSub || n == kMul || n == kDiv)
        return 1;
    return 0;
}

} // namespace wsc::dialects::linalg
