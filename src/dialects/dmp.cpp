#include "dialects/dmp.h"

#include "support/error.h"

namespace wsc::dialects::dmp {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("dmp"))
        return;
    registerSimpleOp(ctx, kSwap, {
        .numOperands = 1,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSwaps))
                return "dmp.swap requires a swaps attribute";
            if (!op->attr(ir::attrs::kTopology))
                return "dmp.swap requires a topology attribute";
            if (op->operand(0).type() != op->result(0).type())
                return "dmp.swap result type must match operand";
            return "";
        },
    });
}

ir::Value
createSwap(ir::OpBuilder &b, ir::Value input,
           const std::vector<Exchange> &swaps, int64_t nx, int64_t ny)
{
    ir::Context &ctx = b.context();
    std::vector<ir::Attribute> swapAttrs;
    for (const Exchange &e : swaps) {
        swapAttrs.push_back(ir::getDictAttr(
            ctx, {{"to", ir::getIntArrayAttr(ctx, {e.dx, e.dy})},
                  {"width", ir::getIntAttr(ctx, e.width)}}));
    }
    return b.create(kSwap, {input}, {input.type()},
                    {{"swaps", ir::getArrayAttr(ctx, swapAttrs)},
                     {"topology", ir::getIntArrayAttr(ctx, {nx, ny})}})
        ->result();
}

std::vector<Exchange>
swapExchanges(ir::Operation *swapOp)
{
    std::vector<Exchange> out;
    for (ir::Attribute entry : ir::arrayAttrValue(swapOp->attr(ir::attrs::kSwaps))) {
        Exchange e;
        std::vector<int64_t> to =
            ir::intArrayAttrValue(ir::dictAttrGet(entry, "to"));
        e.dx = to[0];
        e.dy = to[1];
        e.width = ir::intAttrValue(ir::dictAttrGet(entry, "width"));
        out.push_back(e);
    }
    return out;
}

std::pair<int64_t, int64_t>
swapTopology(ir::Operation *swapOp)
{
    std::vector<int64_t> t =
        ir::intArrayAttrValue(swapOp->attr(ir::attrs::kTopology));
    WSC_ASSERT(t.size() == 2, "dmp.swap topology must be 2-D");
    return {t[0], t[1]};
}

} // namespace wsc::dialects::dmp
