#include "dialects/builtin.h"

#include "support/error.h"

namespace wsc::dialects::builtin {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("builtin"))
        return;
    registerSimpleOp(ctx, kModule,
                     {.numOperands = 0, .numResults = 0, .numRegions = 1});
    registerSimpleOp(ctx, kUnrealizedCast,
                     {.numOperands = 1, .numResults = 1, .numRegions = 0});
}

ir::OwningOp
createModule(ir::Context &ctx)
{
    ir::Operation *module =
        ir::Operation::create(ctx, kModule, {}, {}, {}, 1);
    module->region(0).addBlock();
    return ir::OwningOp(module);
}

ir::Block *
moduleBody(ir::Operation *module)
{
    WSC_ASSERT(module->opId() == kModule,
               "moduleBody on non-module op " << module->name());
    return &module->region(0).front();
}

ir::Value
createCast(ir::OpBuilder &b, ir::Value value, ir::Type type)
{
    return b.create(kUnrealizedCast, {value}, {type})->result();
}

} // namespace wsc::dialects::builtin
