/**
 * @file
 * Convenience registration of every dialect in the pipeline.
 */

#ifndef WSC_DIALECTS_ALL_H
#define WSC_DIALECTS_ALL_H

#include "dialects/arith.h"
#include "dialects/builtin.h"
#include "dialects/csl.h"
#include "dialects/csl_stencil.h"
#include "dialects/csl_wrapper.h"
#include "dialects/dmp.h"
#include "dialects/func.h"
#include "dialects/linalg.h"
#include "dialects/memref.h"
#include "dialects/scf.h"
#include "dialects/stencil.h"
#include "dialects/tensor.h"
#include "dialects/varith.h"

namespace wsc::dialects {

/** Register every dialect used by the lowering pipeline. */
inline void
registerAllDialects(ir::Context &ctx)
{
    builtin::registerDialect(ctx);
    func::registerDialect(ctx);
    arith::registerDialect(ctx);
    scf::registerDialect(ctx);
    stencil::registerDialect(ctx);
    tensor::registerDialect(ctx);
    memref::registerDialect(ctx);
    linalg::registerDialect(ctx);
    dmp::registerDialect(ctx);
    varith::registerDialect(ctx);
    csl_stencil::registerDialect(ctx);
    csl_wrapper::registerDialect(ctx);
    csl::registerDialect(ctx);
}

} // namespace wsc::dialects

#endif // WSC_DIALECTS_ALL_H
