/**
 * @file
 * Minimal memref dialect: reference-semantics buffers produced by
 * bufferization, lowered further to CSL DSDs.
 */

#ifndef WSC_DIALECTS_MEMREF_H
#define WSC_DIALECTS_MEMREF_H

#include "dialects/common.h"

namespace wsc::dialects::memref {

inline constexpr const char *kAlloc = "memref.alloc";
inline constexpr const char *kDealloc = "memref.dealloc";
inline constexpr const char *kCopy = "memref.copy";
inline constexpr const char *kSubview = "memref.subview";
inline constexpr const char *kLoad = "memref.load";
inline constexpr const char *kStore = "memref.store";

void registerDialect(ir::Context &ctx);

/** Allocate a buffer of the given memref type. */
ir::Value createAlloc(ir::OpBuilder &b, ir::Type memrefType);

/** memref.copy(source, dest). */
ir::Operation *createCopy(ir::OpBuilder &b, ir::Value source,
                          ir::Value dest);

/**
 * 1-D subview at a static or dynamic offset. When `dynOffset` is a valid
 * value it is used; otherwise `staticOffset` applies.
 */
ir::Value createSubview(ir::OpBuilder &b, ir::Value source,
                        int64_t staticOffset, int64_t size,
                        ir::Value dynOffset = ir::Value());

/** Scalar load at indices. */
ir::Value createLoad(ir::OpBuilder &b, ir::Value memref,
                     const std::vector<ir::Value> &indices);

/** Scalar store at indices. */
ir::Operation *createStore(ir::OpBuilder &b, ir::Value value,
                           ir::Value memref,
                           const std::vector<ir::Value> &indices);

} // namespace wsc::dialects::memref

#endif // WSC_DIALECTS_MEMREF_H
