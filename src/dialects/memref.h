/**
 * @file
 * Minimal memref dialect: reference-semantics buffers produced by
 * bufferization, lowered further to CSL DSDs.
 */

#ifndef WSC_DIALECTS_MEMREF_H
#define WSC_DIALECTS_MEMREF_H

#include "dialects/common.h"

namespace wsc::dialects::memref {

inline const ir::OpId kAlloc = ir::OpId::get("memref.alloc");
inline const ir::OpId kDealloc = ir::OpId::get("memref.dealloc");
inline const ir::OpId kCopy = ir::OpId::get("memref.copy");
inline const ir::OpId kSubview = ir::OpId::get("memref.subview");
inline const ir::OpId kLoad = ir::OpId::get("memref.load");
inline const ir::OpId kStore = ir::OpId::get("memref.store");

void registerDialect(ir::Context &ctx);

/** Allocate a buffer of the given memref type. */
ir::Value createAlloc(ir::OpBuilder &b, ir::Type memrefType);

/** memref.copy(source, dest). */
ir::Operation *createCopy(ir::OpBuilder &b, ir::Value source,
                          ir::Value dest);

/**
 * 1-D subview at a static or dynamic offset. When `dynOffset` is a valid
 * value it is used; otherwise `staticOffset` applies.
 */
ir::Value createSubview(ir::OpBuilder &b, ir::Value source,
                        int64_t staticOffset, int64_t size,
                        ir::Value dynOffset = ir::Value());

/** Scalar load at indices. */
ir::Value createLoad(ir::OpBuilder &b, ir::Value memref,
                     const std::vector<ir::Value> &indices);

/** Scalar store at indices. */
ir::Operation *createStore(ir::OpBuilder &b, ir::Value value,
                           ir::Value memref,
                           const std::vector<ir::Value> &indices);

} // namespace wsc::dialects::memref

#endif // WSC_DIALECTS_MEMREF_H
