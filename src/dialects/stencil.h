/**
 * @file
 * The stencil dialect (Open Earth Compiler / xDSL lineage): an
 * architecture-agnostic, value-semantics description of stencil
 * computations over bounded grids.
 *
 * Types:
 *   !stencil.field<[lb,ub]x...xT>  — a named grid in storage
 *   !stencil.temp<[lb,ub]x...xT>   — an SSA value holding grid data
 *
 * Ops: stencil.load / stencil.apply / stencil.access / stencil.return /
 * stencil.store.
 */

#ifndef WSC_DIALECTS_STENCIL_H
#define WSC_DIALECTS_STENCIL_H

#include <cstdint>
#include <vector>

#include "dialects/common.h"

namespace wsc::dialects::stencil {

inline const ir::OpId kLoad = ir::OpId::get("stencil.load");
inline const ir::OpId kStore = ir::OpId::get("stencil.store");
inline const ir::OpId kApply = ir::OpId::get("stencil.apply");
inline const ir::OpId kAccess = ir::OpId::get("stencil.access");
inline const ir::OpId kReturn = ir::OpId::get("stencil.return");

/** Per-dimension inclusive-lower / exclusive-upper bounds. */
struct Bounds
{
    std::vector<int64_t> lb;
    std::vector<int64_t> ub;

    size_t rank() const { return lb.size(); }
    int64_t size(size_t dim) const { return ub[dim] - lb[dim]; }
    int64_t
    totalSize() const
    {
        int64_t n = 1;
        for (size_t d = 0; d < rank(); ++d)
            n *= size(d);
        return n;
    }
    bool operator==(const Bounds &other) const = default;
};

void registerDialect(ir::Context &ctx);

/// @name Types
/// @{
ir::Type getFieldType(ir::Context &ctx, const Bounds &bounds,
                      ir::Type elementType);
ir::Type getTempType(ir::Context &ctx, const Bounds &bounds,
                     ir::Type elementType);
bool isFieldType(ir::Type t);
bool isTempType(ir::Type t);
/** Bounds of a field/temp type. */
Bounds boundsOf(ir::Type t);
/** Element type of a field/temp type (scalar or tensor when tensorized). */
ir::Type stencilElementTypeOf(ir::Type t);
/// @}

/// @name Ops
/// @{
/** stencil.load: field -> temp covering the field bounds. */
ir::Value createLoad(ir::OpBuilder &b, ir::Value field);

/** stencil.store: write a temp back to a field over `bounds`. */
ir::Operation *createStore(ir::OpBuilder &b, ir::Value temp, ir::Value field,
                           const Bounds &bounds);

/**
 * stencil.apply over `operands`. The body block receives one argument per
 * operand (same types) and must be terminated with stencil.return. Result
 * types are temps with the given bounds and element types.
 */
ir::Operation *createApply(ir::OpBuilder &b,
                           const std::vector<ir::Value> &operands,
                           const std::vector<ir::Type> &resultTypes);

/** The body block of a stencil.apply (or csl_stencil.apply region). */
ir::Block *applyBody(ir::Operation *applyOp);

/**
 * stencil.access of a temp at a constant offset relative to the current
 * grid point. Result type is the temp's element type.
 */
ir::Value createAccess(ir::OpBuilder &b, ir::Value temp,
                       const std::vector<int64_t> &offset);

/** Offset of a stencil.access / csl_stencil.access op. */
std::vector<int64_t> accessOffset(ir::Operation *accessOp);

/** stencil.return terminator. */
ir::Operation *createReturn(ir::OpBuilder &b,
                            const std::vector<ir::Value> &values);
/// @}

} // namespace wsc::dialects::stencil

#endif // WSC_DIALECTS_STENCIL_H
