#include "dialects/varith.h"

#include "support/error.h"

namespace wsc::dialects::varith {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("varith"))
        return;
    for (ir::OpId name : {kAdd, kMul}) {
        registerSimpleOp(ctx, name, {
            .minOperands = 1,
            .numResults = 1,
            .extraVerify = [](ir::Operation *op) -> std::string {
                ir::Type t = op->operand(0).type();
                for (unsigned i = 1; i < op->numOperands(); ++i)
                    if (op->operand(i).type() != t)
                        return "varith operand types differ";
                if (op->result(0).type() != t)
                    return "varith result type differs";
                return "";
            },
        });
    }
}

ir::Value
createVariadic(ir::OpBuilder &b, const std::string &name,
               const std::vector<ir::Value> &operands)
{
    WSC_ASSERT(!operands.empty(), "varith op requires operands");
    return b.create(name, operands, {operands[0].type()})->result();
}

} // namespace wsc::dialects::varith
