/**
 * @file
 * Minimal linalg dialect in Destination-Passing Style: element-wise ops
 * reading `ins` and writing `outs`, mirroring CSL's DSD builtin model
 * (computations operate on physical memory passed as operands).
 *
 * Convention: operands are [ins..., out]; ops have no results when acting
 * on memrefs (reference semantics after bufferization).
 */

#ifndef WSC_DIALECTS_LINALG_H
#define WSC_DIALECTS_LINALG_H

#include "dialects/common.h"

namespace wsc::dialects::linalg {

inline const ir::OpId kAdd = ir::OpId::get("linalg.add");
inline const ir::OpId kSub = ir::OpId::get("linalg.sub");
inline const ir::OpId kMul = ir::OpId::get("linalg.mul");
inline const ir::OpId kDiv = ir::OpId::get("linalg.div");
inline const ir::OpId kFill = ir::OpId::get("linalg.fill");
inline const ir::OpId kCopy = ir::OpId::get("linalg.copy");
/**
 * linalg.fmac: out = addend + mulend * scalar (element-wise), the DPS
 * model of CSL's @fmacs builtin. Operands: [addend, mulend, scalar, out].
 */
inline const ir::OpId kFmac = ir::OpId::get("linalg.fmac");

void registerDialect(ir::Context &ctx);

/** Binary DPS op: op(ins[0], ins[1]) -> out. */
ir::Operation *createBinary(ir::OpBuilder &b, const std::string &name,
                            ir::Value lhs, ir::Value rhs, ir::Value out);

/** linalg.fill(scalar) -> out. */
ir::Operation *createFill(ir::OpBuilder &b, ir::Value scalar, ir::Value out);

/** linalg.copy(source) -> out. */
ir::Operation *createCopy(ir::OpBuilder &b, ir::Value source, ir::Value out);

/** linalg.fmac(addend, mulend, scalar) -> out. */
ir::Operation *createFmac(ir::OpBuilder &b, ir::Value addend,
                          ir::Value mulend, ir::Value scalar, ir::Value out);

/** True for any linalg compute op. */
bool isLinalgOp(ir::Operation *op);

/** Number of FLOPs per element for a linalg op (fmac counts 2). */
int flopsPerElement(ir::Operation *op);

} // namespace wsc::dialects::linalg

#endif // WSC_DIALECTS_LINALG_H
