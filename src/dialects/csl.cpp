#include "dialects/csl.h"

#include "support/error.h"

namespace wsc::dialects::csl {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("csl"))
        return;
    registerSimpleOp(ctx, kModule, {
        .numOperands = 0,
        .numResults = 0,
        .numRegions = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            ir::Attribute kind = op->attr(ir::attrs::kKind);
            if (!kind || !ir::isStringAttr(kind))
                return "csl.module requires a kind attribute";
            const std::string &k = ir::stringAttrValue(kind);
            if (k != "program" && k != "layout")
                return "csl.module kind must be program or layout";
            return "";
        },
    });
    registerSimpleOp(ctx, kParam, {
        .numOperands = 0,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kName))
                return "csl.param requires a name";
            return "";
        },
    });
    registerSimpleOp(ctx, kImportModule, {
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kModule))
                return "csl.import_module requires a module name";
            return "";
        },
    });
    registerSimpleOp(ctx, kMemberCall, {
        .minOperands = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kMember))
                return "csl.member_call requires a member name";
            return "";
        },
    });
    registerSimpleOp(ctx, kFunc, {
        .numOperands = 0,
        .numResults = 0,
        .numRegions = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSymName))
                return "csl.func requires a sym_name";
            return "";
        },
    });
    registerSimpleOp(ctx, kTask, {
        .numOperands = 0,
        .numResults = 0,
        .numRegions = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSymName))
                return "csl.task requires a sym_name";
            ir::Attribute kind = op->attr(ir::attrs::kKind);
            if (!kind || !ir::isStringAttr(kind))
                return "csl.task requires a kind";
            const std::string &k = ir::stringAttrValue(kind);
            if (k != "data" && k != "control" && k != "local")
                return "csl.task kind must be data, control or local";
            if (!op->attr(ir::attrs::kId))
                return "csl.task requires an id";
            return "";
        },
    });
    registerSimpleOp(ctx, kReturn,
                     {.numResults = 0, .numRegions = 0,
                      .isTerminator = true});
    registerSimpleOp(ctx, kCall, {
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kCallee))
                return "csl.call requires a callee";
            return "";
        },
    });
    registerSimpleOp(ctx, kActivate, {
        .numOperands = 0,
        .numResults = 0,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kTask))
                return "csl.activate requires a task name";
            return "";
        },
    });
    registerSimpleOp(ctx, kVariable, {
        .numOperands = 0,
        .numResults = 0,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSymName))
                return "csl.variable requires a sym_name";
            if (!op->attr(ir::attrs::kType))
                return "csl.variable requires a type";
            return "";
        },
    });
    registerSimpleOp(ctx, kLoadVar, {
        .numOperands = 0,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kVar))
                return "csl.load_var requires a var";
            return "";
        },
    });
    registerSimpleOp(ctx, kStoreVar, {
        .numOperands = 1,
        .numResults = 0,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kVar))
                return "csl.store_var requires a var";
            return "";
        },
    });
    registerSimpleOp(ctx, kAddressOf, {
        .numOperands = 0,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kVar))
                return "csl.addressof requires a var";
            if (!isPtrType(op->result(0).type()))
                return "csl.addressof result must be a pointer";
            return "";
        },
    });
    registerSimpleOp(ctx, kGetMemDsd, {
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kVar))
                return "csl.get_mem_dsd requires a var";
            if (!isDsdType(op->result(0).type()))
                return "csl.get_mem_dsd result must be a DSD";
            return "";
        },
    });
    registerSimpleOp(ctx, kSetDsdBaseAddr,
                     {.numOperands = 2, .numResults = 1});
    registerSimpleOp(ctx, kIncrementDsdOffset,
                     {.numOperands = 2, .numResults = 1});
    registerSimpleOp(ctx, kSetDsdLength,
                     {.numOperands = 2, .numResults = 1});
    registerSimpleOp(ctx, kFadds, {.numOperands = 3, .numResults = 0});
    registerSimpleOp(ctx, kFsubs, {.numOperands = 3, .numResults = 0});
    registerSimpleOp(ctx, kFmuls, {.numOperands = 3, .numResults = 0});
    registerSimpleOp(ctx, kFmovs, {.numOperands = 2, .numResults = 0});
    registerSimpleOp(ctx, kFmacs, {.numOperands = 4, .numResults = 0});
    registerSimpleOp(ctx, kCommsExchange, {
        .numOperands = 1,
        .numResults = 0,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kRecvCb) || !op->attr(ir::attrs::kDoneCb))
                return "csl.comms_exchange requires recv_cb and done_cb";
            if (!op->attr(ir::attrs::kNumChunks))
                return "csl.comms_exchange requires num_chunks";
            return "";
        },
    });
    registerSimpleOp(ctx, kExport, {.numOperands = 0, .numResults = 0});
    registerSimpleOp(ctx, kUnblockCmdStream,
                     {.numOperands = 0, .numResults = 0});
    registerSimpleOp(ctx, kSetRectangle,
                     {.numOperands = 0, .numResults = 0});
    registerSimpleOp(ctx, kSetTileCode,
                     {.numOperands = 0, .numResults = 0});
}

ir::Type
getDsdType(ir::Context &ctx, const std::string &kind)
{
    return ir::getType(ctx, "csl.dsd", {}, {}, {kind});
}

bool
isDsdType(ir::Type t)
{
    return t && t.kind() == "csl.dsd";
}

ir::Type
getPtrType(ir::Context &ctx, ir::Type pointee)
{
    return ir::getType(ctx, "csl.ptr", {}, {pointee});
}

bool
isPtrType(ir::Type t)
{
    return t && t.kind() == "csl.ptr";
}

ir::Type
ptrPointeeType(ir::Type t)
{
    WSC_ASSERT(isPtrType(t), "ptrPointeeType on " << t.str());
    return ir::Type(t.impl()->types[0]);
}

ir::Type
getComptimeStructType(ir::Context &ctx)
{
    return ir::getType(ctx, "csl.comptime_struct");
}

ir::Type
getColorType(ir::Context &ctx)
{
    return ir::getType(ctx, "csl.color");
}

ir::Operation *
createModule(ir::OpBuilder &b, const std::string &kind,
             const std::string &name)
{
    ir::Context &ctx = b.context();
    ir::Operation *module =
        b.create(kModule, {}, {},
                 {{"kind", ir::getStringAttr(ctx, kind)},
                  {"sym_name", ir::getStringAttr(ctx, name)}},
                 /*numRegions=*/1);
    module->region(0).addBlock();
    return module;
}

ir::Block *
moduleBody(ir::Operation *moduleOp)
{
    WSC_ASSERT(moduleOp->opId() == kModule,
               "moduleBody on " << moduleOp->name());
    return &moduleOp->region(0).front();
}

ir::Value
createParam(ir::OpBuilder &b, const std::string &name, ir::Type type,
            std::optional<int64_t> defaultValue)
{
    ir::Context &ctx = b.context();
    std::vector<std::pair<std::string, ir::Attribute>> attrs = {
        {"name", ir::getStringAttr(ctx, name)}};
    if (defaultValue)
        attrs.emplace_back("default", ir::getIntAttr(ctx, *defaultValue));
    return b.create(kParam, {}, {type}, attrs)->result();
}

ir::Value
createImportModule(ir::OpBuilder &b, const std::string &module,
                   const std::vector<std::pair<std::string, ir::Value>>
                       &fields)
{
    ir::Context &ctx = b.context();
    std::vector<ir::Value> operands;
    std::vector<ir::Attribute> names;
    for (const auto &[name, value] : fields) {
        names.push_back(ir::getStringAttr(ctx, name));
        operands.push_back(value);
    }
    return b.create(kImportModule, operands,
                    {getComptimeStructType(ctx)},
                    {{"module", ir::getStringAttr(ctx, module)},
                     {"fields", ir::getArrayAttr(ctx, names)}})
        ->result();
}

ir::Operation *
createMemberCall(ir::OpBuilder &b, ir::Value moduleStruct,
                 const std::string &member,
                 const std::vector<ir::Value> &args,
                 const std::vector<ir::Type> &results)
{
    std::vector<ir::Value> operands = {moduleStruct};
    operands.insert(operands.end(), args.begin(), args.end());
    return b.create(kMemberCall, operands, results,
                    {{"member", ir::getStringAttr(b.context(), member)}});
}

ir::Operation *
createFunc(ir::OpBuilder &b, const std::string &name,
           const std::vector<ir::Type> &inputs,
           const std::vector<ir::Type> &results)
{
    ir::Context &ctx = b.context();
    ir::Type fnType = ir::getFunctionType(ctx, inputs, results);
    ir::Operation *fn =
        b.create(kFunc, {}, {},
                 {{"sym_name", ir::getStringAttr(ctx, name)},
                  {"function_type", ir::getTypeAttr(ctx, fnType)}},
                 /*numRegions=*/1);
    ir::Block *entry = fn->region(0).addBlock();
    for (ir::Type t : inputs)
        entry->addArgument(t);
    return fn;
}

ir::Operation *
createTask(ir::OpBuilder &b, const std::string &name,
           const std::string &kind, int64_t id,
           const std::vector<ir::Type> &argTypes)
{
    ir::Context &ctx = b.context();
    ir::Operation *task =
        b.create(kTask, {}, {},
                 {{"sym_name", ir::getStringAttr(ctx, name)},
                  {"kind", ir::getStringAttr(ctx, kind)},
                  {"id", ir::getIntAttr(ctx, id)}},
                 /*numRegions=*/1);
    ir::Block *entry = task->region(0).addBlock();
    for (ir::Type t : argTypes)
        entry->addArgument(t);
    return task;
}

ir::Block *
calleeBody(ir::Operation *funcOrTask)
{
    WSC_ASSERT(funcOrTask->numRegions() == 1 &&
                   !funcOrTask->region(0).empty(),
               "calleeBody on " << funcOrTask->name());
    return &funcOrTask->region(0).front();
}

ir::Operation *
createReturn(ir::OpBuilder &b, const std::vector<ir::Value> &values)
{
    return b.create(kReturn, values, {});
}

ir::Operation *
createCall(ir::OpBuilder &b, const std::string &callee,
           const std::vector<ir::Value> &operands,
           const std::vector<ir::Type> &results)
{
    return b.create(kCall, operands, results,
                    {{"callee", ir::getStringAttr(b.context(), callee)}});
}

ir::Operation *
createActivate(ir::OpBuilder &b, const std::string &task)
{
    return b.create(kActivate, {}, {},
                    {{"task", ir::getStringAttr(b.context(), task)}});
}

ir::Operation *
createVariable(ir::OpBuilder &b, const std::string &name, ir::Type type,
               ir::Attribute init)
{
    ir::Context &ctx = b.context();
    std::vector<std::pair<std::string, ir::Attribute>> attrs = {
        {"sym_name", ir::getStringAttr(ctx, name)},
        {"type", ir::getTypeAttr(ctx, type)}};
    if (init)
        attrs.emplace_back("init", init);
    return b.create(kVariable, {}, {}, attrs);
}

ir::Value
createLoadVar(ir::OpBuilder &b, const std::string &name, ir::Type type)
{
    return b.create(kLoadVar, {}, {type},
                    {{"var", ir::getStringAttr(b.context(), name)}})
        ->result();
}

ir::Operation *
createStoreVar(ir::OpBuilder &b, const std::string &name, ir::Value value)
{
    return b.create(kStoreVar, {value}, {},
                    {{"var", ir::getStringAttr(b.context(), name)}});
}

ir::Value
createAddressOf(ir::OpBuilder &b, const std::string &name, ir::Type ptrType)
{
    return b.create(kAddressOf, {}, {ptrType},
                    {{"var", ir::getStringAttr(b.context(), name)}})
        ->result();
}

ir::Value
createGetMemDsd(ir::OpBuilder &b, const std::string &var, int64_t offset,
                int64_t length, int64_t stride, bool viaPtr)
{
    ir::Context &ctx = b.context();
    std::vector<std::pair<std::string, ir::Attribute>> attrs = {
        {"var", ir::getStringAttr(ctx, var)},
        {"offset", ir::getIntAttr(ctx, offset)},
        {"length", ir::getIntAttr(ctx, length)},
        {"stride", ir::getIntAttr(ctx, stride)}};
    if (viaPtr)
        attrs.emplace_back("via_ptr", ir::getUnitAttr(ctx));
    return b.create(kGetMemDsd, {}, {getDsdType(ctx)}, attrs)->result();
}

ir::Value
createIncrementDsdOffset(ir::OpBuilder &b, ir::Value dsd,
                         ir::Value offsetElems)
{
    return b.create(kIncrementDsdOffset, {dsd, offsetElems}, {dsd.type()})
        ->result();
}

ir::Operation *
createBuiltin(ir::OpBuilder &b, const std::string &name,
              const std::vector<ir::Value> &operands)
{
    return b.create(name, operands, {});
}

ir::Operation *
createCommsExchange(ir::OpBuilder &b, ir::Value sendBuf,
                    const CommsExchangeSpec &spec)
{
    ir::Context &ctx = b.context();
    std::vector<int64_t> flatAccesses;
    for (const auto &[dx, dy] : spec.accesses) {
        flatAccesses.push_back(dx);
        flatAccesses.push_back(dy);
    }
    std::vector<std::pair<std::string, ir::Attribute>> attrs = {
        {"recv_cb", ir::getStringAttr(ctx, spec.recvCallback)},
        {"done_cb", ir::getStringAttr(ctx, spec.doneCallback)},
        {"recv_buffer", ir::getStringAttr(ctx, spec.recvBufferName)},
        {"accesses", ir::getIntArrayAttr(ctx, flatAccesses)},
        {"num_chunks", ir::getIntAttr(ctx, spec.numChunks)},
        {"pattern", ir::getIntAttr(ctx, spec.pattern)},
        {"z_size", ir::getIntAttr(ctx, spec.zSize)},
        {"trim_first", ir::getIntAttr(ctx, spec.trimFirst)},
        {"trim_last", ir::getIntAttr(ctx, spec.trimLast)}};
    if (!spec.coeffs.empty()) {
        ir::Type coeffType = ir::getTensorType(
            ctx, {static_cast<int64_t>(spec.coeffs.size())},
            ir::getF32Type(ctx));
        attrs.emplace_back("coeffs",
                           ir::getDenseAttr(ctx, coeffType, spec.coeffs));
    }
    return b.create(kCommsExchange, {sendBuf}, {}, attrs);
}

CommsExchangeSpec
commsExchangeSpec(ir::Operation *op)
{
    WSC_ASSERT(op->opId() == kCommsExchange,
               "commsExchangeSpec on " << op->name());
    CommsExchangeSpec spec;
    spec.recvCallback = op->strAttr(ir::attrs::kRecvCb);
    spec.doneCallback = op->strAttr(ir::attrs::kDoneCb);
    if (op->hasAttr(ir::attrs::kRecvBuffer))
        spec.recvBufferName = op->strAttr(ir::attrs::kRecvBuffer);
    std::vector<int64_t> flat =
        ir::intArrayAttrValue(op->attr(ir::attrs::kAccesses));
    for (size_t i = 0; i + 1 < flat.size(); i += 2)
        spec.accesses.emplace_back(flat[i], flat[i + 1]);
    spec.numChunks = op->intAttr(ir::attrs::kNumChunks);
    spec.pattern = op->intAttr(ir::attrs::kPattern);
    spec.zSize = op->intAttr(ir::attrs::kZSize);
    spec.trimFirst = op->intAttr(ir::attrs::kTrimFirst);
    spec.trimLast = op->intAttr(ir::attrs::kTrimLast);
    if (ir::Attribute coeffs = op->attr(ir::attrs::kCoeffs))
        spec.coeffs = ir::denseAttrValues(coeffs);
    return spec;
}

ir::Operation *
createExport(ir::OpBuilder &b, const std::string &name,
             const std::string &kind)
{
    ir::Context &ctx = b.context();
    return b.create(kExport, {}, {},
                    {{"name", ir::getStringAttr(ctx, name)},
                     {"kind", ir::getStringAttr(ctx, kind)}});
}

ir::Operation *
createUnblockCmdStream(ir::OpBuilder &b)
{
    return b.create(kUnblockCmdStream, {}, {});
}

} // namespace wsc::dialects::csl
