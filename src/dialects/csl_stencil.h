/**
 * @file
 * The csl-stencil dialect (paper §4.1): the WSE-specific stencil form that
 * makes communication explicit and splits computation into processing of
 * remotely-held data (received in chunks) and locally-held data.
 *
 * csl_stencil.apply carries two regions:
 *   region 0 — receive-chunk: executed once per incoming chunk, with block
 *     args (%recvBuf, %offset : index, %acc); reduces the chunk into the
 *     accumulator (and may apply promoted coefficients);
 *   region 1 — done-exchange: executed once after all chunks arrived, with
 *     block args (%input, %acc); performs the remaining local compute.
 */

#ifndef WSC_DIALECTS_CSL_STENCIL_H
#define WSC_DIALECTS_CSL_STENCIL_H

#include <cstdint>
#include <vector>

#include "dialects/common.h"
#include "dialects/dmp.h"

namespace wsc::dialects::csl_stencil {

inline const ir::OpId kPrefetch = ir::OpId::get("csl_stencil.prefetch");
inline const ir::OpId kApply = ir::OpId::get("csl_stencil.apply");
inline const ir::OpId kAccess = ir::OpId::get("csl_stencil.access");
inline const ir::OpId kYield = ir::OpId::get("csl_stencil.yield");

void registerDialect(ir::Context &ctx);

/**
 * csl_stencil.prefetch: fetch remote data described by the exchanges into
 * a local receive buffer. Result type is the buffer tensor
 * (neighbours x z-size).
 */
ir::Value createPrefetch(ir::OpBuilder &b, ir::Value input,
                         const std::vector<dmp::Exchange> &swaps,
                         int64_t numChunks, ir::Type bufferType);

/**
 * csl_stencil.apply combining communication and computation.
 *
 * Operands: [input temp (communicated), accumulator init tensor,
 * otherInputs... (local-only temps)].
 * Attributes: swaps, num_chunks, topology; optional `coeffs` (per-neighbour
 * factors promoted into the communication path, canonical section order).
 * Results: one temp (the computed output).
 *
 * Region blocks are created with the canonical arguments:
 *   region 0 (receive-chunk): (recvBufferChunk tensor, offset index, acc)
 *   region 1 (done-exchange): (input temp, acc tensor, otherInputs...)
 */
ir::Operation *createApply(ir::OpBuilder &b, ir::Value input,
                           ir::Value accumulator,
                           const std::vector<ir::Value> &otherInputs,
                           const std::vector<dmp::Exchange> &swaps,
                           int64_t numChunks,
                           std::pair<int64_t, int64_t> topology,
                           ir::Type resultType,
                           ir::Type recvChunkType);

/**
 * Canonical section order of exchanges: by source direction (E, W, N, S),
 * then by distance — the order the runtime library's receive buffer uses.
 */
std::vector<dmp::Exchange> canonicalExchangeOrder(
    std::vector<dmp::Exchange> swaps);

/** Receive-chunk region block. */
ir::Block *applyRecvBlock(ir::Operation *applyOp);
/** Done-exchange region block. */
ir::Block *applyDoneBlock(ir::Operation *applyOp);

/** Decode the swaps attribute of prefetch/apply. */
std::vector<dmp::Exchange> applyExchanges(ir::Operation *op);

/** num_chunks attribute. */
int64_t applyNumChunks(ir::Operation *op);

/**
 * csl_stencil.access: offset-based access, resolved to either local data
 * or the receive buffer depending on the offset.
 */
ir::Value createAccess(ir::OpBuilder &b, ir::Value source,
                       const std::vector<int64_t> &offset,
                       ir::Type resultType);

/** csl_stencil.yield terminator. */
ir::Operation *createYield(ir::OpBuilder &b,
                           const std::vector<ir::Value> &values);

} // namespace wsc::dialects::csl_stencil

#endif // WSC_DIALECTS_CSL_STENCIL_H
