/**
 * @file
 * The builtin dialect: the top-level module op and the transitional
 * unrealized_cast used while converting between type systems.
 */

#ifndef WSC_DIALECTS_BUILTIN_H
#define WSC_DIALECTS_BUILTIN_H

#include "dialects/common.h"

namespace wsc::dialects::builtin {

inline const ir::OpId kModule = ir::OpId::get("builtin.module");
inline const ir::OpId kUnrealizedCast = ir::OpId::get("builtin.unrealized_cast");

void registerDialect(ir::Context &ctx);

/** Create an empty module (one region, one block). */
ir::OwningOp createModule(ir::Context &ctx);

/** The module's single body block. */
ir::Block *moduleBody(ir::Operation *module);

/** Build an unrealized cast of `value` to `type`. */
ir::Value createCast(ir::OpBuilder &b, ir::Value value, ir::Type type);

} // namespace wsc::dialects::builtin

#endif // WSC_DIALECTS_BUILTIN_H
