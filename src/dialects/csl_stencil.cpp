#include "dialects/csl_stencil.h"

#include <algorithm>
#include <cstdlib>

#include "support/error.h"

namespace wsc::dialects::csl_stencil {

namespace {

ir::Attribute
encodeSwaps(ir::Context &ctx, const std::vector<dmp::Exchange> &swaps)
{
    std::vector<ir::Attribute> swapAttrs;
    for (const dmp::Exchange &e : swaps) {
        swapAttrs.push_back(ir::getDictAttr(
            ctx, {{"to", ir::getIntArrayAttr(ctx, {e.dx, e.dy})},
                  {"width", ir::getIntAttr(ctx, e.width)}}));
    }
    return ir::getArrayAttr(ctx, swapAttrs);
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("csl_stencil"))
        return;
    registerSimpleOp(ctx, kPrefetch, {
        .numOperands = 1,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSwaps))
                return "csl_stencil.prefetch requires swaps";
            if (!op->attr(ir::attrs::kNumChunks))
                return "csl_stencil.prefetch requires num_chunks";
            return "";
        },
    });
    registerSimpleOp(ctx, kApply, {
        .minOperands = 2,
        .numResults = 1,
        .numRegions = 2,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSwaps))
                return "csl_stencil.apply requires swaps";
            if (!op->attr(ir::attrs::kNumChunks))
                return "csl_stencil.apply requires num_chunks";
            if (op->intAttr(ir::attrs::kNumChunks) < 1)
                return "num_chunks must be >= 1";
            if (op->region(0).empty() || op->region(1).empty())
                return "csl_stencil.apply requires two populated regions";
            if (op->region(0).front().numArguments() != 3)
                return "receive-chunk region must take (buf, offset, acc)";
            if (op->region(1).front().numArguments() != op->numOperands())
                return "done-exchange region must take (input, acc, "
                       "others...)";
            return "";
        },
    });
    registerSimpleOp(ctx, kAccess, {
        .numOperands = 1,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kOffset))
                return "csl_stencil.access requires an offset";
            return "";
        },
    });
    registerSimpleOp(ctx, kYield,
                     {.numResults = 0, .numRegions = 0,
                      .isTerminator = true});
}

ir::Value
createPrefetch(ir::OpBuilder &b, ir::Value input,
               const std::vector<dmp::Exchange> &swaps, int64_t numChunks,
               ir::Type bufferType)
{
    ir::Context &ctx = b.context();
    return b.create(kPrefetch, {input}, {bufferType},
                    {{"swaps", encodeSwaps(ctx, swaps)},
                     {"num_chunks", ir::getIntAttr(ctx, numChunks)}})
        ->result();
}

ir::Operation *
createApply(ir::OpBuilder &b, ir::Value input, ir::Value accumulator,
            const std::vector<ir::Value> &otherInputs,
            const std::vector<dmp::Exchange> &swaps, int64_t numChunks,
            std::pair<int64_t, int64_t> topology, ir::Type resultType,
            ir::Type recvChunkType)
{
    ir::Context &ctx = b.context();
    std::vector<ir::Value> operands = {input, accumulator};
    operands.insert(operands.end(), otherInputs.begin(), otherInputs.end());
    ir::Operation *apply = b.create(
        kApply, operands, {resultType},
        {{"swaps", encodeSwaps(ctx, swaps)},
         {"num_chunks", ir::getIntAttr(ctx, numChunks)},
         {"topology",
          ir::getIntArrayAttr(ctx, {topology.first, topology.second})}},
        /*numRegions=*/2);
    ir::Block *recv = apply->region(0).addBlock();
    recv->addArgument(recvChunkType);
    recv->addArgument(ir::getIndexType(ctx));
    recv->addArgument(accumulator.type());
    ir::Block *done = apply->region(1).addBlock();
    done->addArgument(input.type());
    done->addArgument(accumulator.type());
    for (ir::Value v : otherInputs)
        done->addArgument(v.type());
    return apply;
}

std::vector<dmp::Exchange>
canonicalExchangeOrder(std::vector<dmp::Exchange> swaps)
{
    auto rank = [](const dmp::Exchange &e) {
        // E, W, N, S by the direction of the *source* PE.
        if (e.dx > 0)
            return 0;
        if (e.dx < 0)
            return 1;
        if (e.dy < 0)
            return 2;
        return 3;
    };
    auto distance = [](const dmp::Exchange &e) {
        return std::max(std::abs(e.dx), std::abs(e.dy));
    };
    std::sort(swaps.begin(), swaps.end(),
              [&](const dmp::Exchange &a, const dmp::Exchange &b) {
                  if (rank(a) != rank(b))
                      return rank(a) < rank(b);
                  return distance(a) < distance(b);
              });
    return swaps;
}

ir::Block *
applyRecvBlock(ir::Operation *applyOp)
{
    WSC_ASSERT(applyOp->opId() == kApply,
               "applyRecvBlock on " << applyOp->name());
    return &applyOp->region(0).front();
}

ir::Block *
applyDoneBlock(ir::Operation *applyOp)
{
    WSC_ASSERT(applyOp->opId() == kApply,
               "applyDoneBlock on " << applyOp->name());
    return &applyOp->region(1).front();
}

std::vector<dmp::Exchange>
applyExchanges(ir::Operation *op)
{
    std::vector<dmp::Exchange> out;
    for (ir::Attribute entry : ir::arrayAttrValue(op->attr(ir::attrs::kSwaps))) {
        dmp::Exchange e;
        std::vector<int64_t> to =
            ir::intArrayAttrValue(ir::dictAttrGet(entry, "to"));
        e.dx = to[0];
        e.dy = to[1];
        e.width = ir::intAttrValue(ir::dictAttrGet(entry, "width"));
        out.push_back(e);
    }
    return out;
}

int64_t
applyNumChunks(ir::Operation *op)
{
    return op->intAttr(ir::attrs::kNumChunks);
}

ir::Value
createAccess(ir::OpBuilder &b, ir::Value source,
             const std::vector<int64_t> &offset, ir::Type resultType)
{
    return b.create(kAccess, {source}, {resultType},
                    {{"offset", ir::getIntArrayAttr(b.context(), offset)}})
        ->result();
}

ir::Operation *
createYield(ir::OpBuilder &b, const std::vector<ir::Value> &values)
{
    return b.create(kYield, values, {});
}

} // namespace wsc::dialects::csl_stencil
