#include "dialects/stencil.h"

#include "support/error.h"

namespace wsc::dialects::stencil {

namespace {

/** Pack bounds as [lb0, ub0, lb1, ub1, ...]. */
std::vector<int64_t>
packBounds(const Bounds &bounds)
{
    WSC_ASSERT(bounds.lb.size() == bounds.ub.size(),
               "bounds lb/ub rank mismatch");
    std::vector<int64_t> ints;
    for (size_t d = 0; d < bounds.rank(); ++d) {
        WSC_ASSERT(bounds.lb[d] <= bounds.ub[d], "empty bounds dimension");
        ints.push_back(bounds.lb[d]);
        ints.push_back(bounds.ub[d]);
    }
    return ints;
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("stencil"))
        return;
    registerSimpleOp(ctx, kLoad, {
        .numOperands = 1,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!isFieldType(op->operand(0).type()))
                return "stencil.load operand must be a field";
            if (!isTempType(op->result(0).type()))
                return "stencil.load result must be a temp";
            return "";
        },
    });
    registerSimpleOp(ctx, kStore, {
        .numOperands = 2,
        .numResults = 0,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!isTempType(op->operand(0).type()))
                return "stencil.store value must be a temp";
            if (!isFieldType(op->operand(1).type()))
                return "stencil.store destination must be a field";
            return "";
        },
    });
    registerSimpleOp(ctx, kApply, {
        .numRegions = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (op->region(0).empty())
                return "stencil.apply requires a body block";
            ir::Block &body = op->region(0).front();
            if (body.numArguments() != op->numOperands())
                return "stencil.apply body arguments must match operands";
            for (unsigned i = 0; i < op->numOperands(); ++i)
                if (body.argument(i).type() != op->operand(i).type())
                    return "stencil.apply body argument type mismatch";
            for (unsigned i = 0; i < op->numResults(); ++i)
                if (!isTempType(op->result(i).type()))
                    return "stencil.apply results must be temps";
            return "";
        },
    });
    registerSimpleOp(ctx, kAccess, {
        .numOperands = 1,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kOffset))
                return "stencil.access requires an offset attribute";
            return "";
        },
    });
    registerSimpleOp(ctx, kReturn,
                     {.numResults = 0, .numRegions = 0,
                      .isTerminator = true});
}

ir::Type
getFieldType(ir::Context &ctx, const Bounds &bounds, ir::Type elementType)
{
    return ir::getType(ctx, "stencil.field", packBounds(bounds),
                       {elementType});
}

ir::Type
getTempType(ir::Context &ctx, const Bounds &bounds, ir::Type elementType)
{
    return ir::getType(ctx, "stencil.temp", packBounds(bounds),
                       {elementType});
}

bool
isFieldType(ir::Type t)
{
    return t && t.kind() == "stencil.field";
}

bool
isTempType(ir::Type t)
{
    return t && t.kind() == "stencil.temp";
}

Bounds
boundsOf(ir::Type t)
{
    WSC_ASSERT(isFieldType(t) || isTempType(t),
               "boundsOf on non-stencil type " << t.str());
    const std::vector<int64_t> &ints = t.impl()->ints;
    Bounds bounds;
    for (size_t i = 0; i + 1 < ints.size(); i += 2) {
        bounds.lb.push_back(ints[i]);
        bounds.ub.push_back(ints[i + 1]);
    }
    return bounds;
}

ir::Type
stencilElementTypeOf(ir::Type t)
{
    WSC_ASSERT(isFieldType(t) || isTempType(t),
               "stencilElementTypeOf on non-stencil type " << t.str());
    return ir::Type(t.impl()->types[0]);
}

ir::Value
createLoad(ir::OpBuilder &b, ir::Value field)
{
    ir::Type fieldType = field.type();
    WSC_ASSERT(isFieldType(fieldType), "createLoad on non-field value");
    ir::Type tempType =
        getTempType(b.context(), boundsOf(fieldType),
                    stencilElementTypeOf(fieldType));
    return b.create(kLoad, {field}, {tempType})->result();
}

ir::Operation *
createStore(ir::OpBuilder &b, ir::Value temp, ir::Value field,
            const Bounds &bounds)
{
    return b.create(kStore, {temp, field}, {},
                    {{"bounds", ir::getIntArrayAttr(b.context(),
                                                    packBounds(bounds))}});
}

ir::Operation *
createApply(ir::OpBuilder &b, const std::vector<ir::Value> &operands,
            const std::vector<ir::Type> &resultTypes)
{
    ir::Operation *apply =
        b.create(kApply, operands, resultTypes, {}, /*numRegions=*/1);
    ir::Block *body = apply->region(0).addBlock();
    for (ir::Value v : operands)
        body->addArgument(v.type());
    return apply;
}

ir::Block *
applyBody(ir::Operation *applyOp)
{
    WSC_ASSERT(applyOp->numRegions() >= 1 && !applyOp->region(0).empty(),
               "applyBody on op without body: " << applyOp->name());
    return &applyOp->region(0).front();
}

ir::Value
createAccess(ir::OpBuilder &b, ir::Value temp,
             const std::vector<int64_t> &offset)
{
    ir::Type elem;
    if (isTempType(temp.type())) {
        elem = stencilElementTypeOf(temp.type());
    } else if (ir::isTensor(temp.type())) {
        elem = temp.type();
    } else {
        panic("stencil.access on unsupported type " + temp.type().str());
    }
    return b.create(kAccess, {temp}, {elem},
                    {{"offset", ir::getIntArrayAttr(b.context(), offset)}})
        ->result();
}

std::vector<int64_t>
accessOffset(ir::Operation *accessOp)
{
    return ir::intArrayAttrValue(accessOp->attr(ir::attrs::kOffset));
}

ir::Operation *
createReturn(ir::OpBuilder &b, const std::vector<ir::Value> &values)
{
    return b.create(kReturn, values, {});
}

} // namespace wsc::dialects::stencil
