/**
 * @file
 * The varith dialect (xDSL lineage): variadic arithmetic. A chain of
 * additions or multiplications is represented as a single n-ary op, which
 * greatly simplifies splitting the computation between remotely- and
 * locally-held data and enables the fuse-repeated-operands optimization.
 */

#ifndef WSC_DIALECTS_VARITH_H
#define WSC_DIALECTS_VARITH_H

#include "dialects/common.h"

namespace wsc::dialects::varith {

inline const ir::OpId kAdd = ir::OpId::get("varith.add");
inline const ir::OpId kMul = ir::OpId::get("varith.mul");

void registerDialect(ir::Context &ctx);

/** Create an n-ary add/mul over same-typed operands. */
ir::Value createVariadic(ir::OpBuilder &b, const std::string &name,
                         const std::vector<ir::Value> &operands);

} // namespace wsc::dialects::varith

#endif // WSC_DIALECTS_VARITH_H
