/**
 * @file
 * The varith dialect (xDSL lineage): variadic arithmetic. A chain of
 * additions or multiplications is represented as a single n-ary op, which
 * greatly simplifies splitting the computation between remotely- and
 * locally-held data and enables the fuse-repeated-operands optimization.
 */

#ifndef WSC_DIALECTS_VARITH_H
#define WSC_DIALECTS_VARITH_H

#include "dialects/common.h"

namespace wsc::dialects::varith {

inline constexpr const char *kAdd = "varith.add";
inline constexpr const char *kMul = "varith.mul";

void registerDialect(ir::Context &ctx);

/** Create an n-ary add/mul over same-typed operands. */
ir::Value createVariadic(ir::OpBuilder &b, const std::string &name,
                         const std::vector<ir::Value> &operands);

} // namespace wsc::dialects::varith

#endif // WSC_DIALECTS_VARITH_H
