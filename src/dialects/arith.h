/**
 * @file
 * The arith dialect: scalar and rank-polymorphic (tensor) arithmetic with
 * value semantics.
 */

#ifndef WSC_DIALECTS_ARITH_H
#define WSC_DIALECTS_ARITH_H

#include "dialects/common.h"

namespace wsc::dialects::arith {

inline const ir::OpId kConstant = ir::OpId::get("arith.constant");
inline const ir::OpId kAddF = ir::OpId::get("arith.addf");
inline const ir::OpId kSubF = ir::OpId::get("arith.subf");
inline const ir::OpId kMulF = ir::OpId::get("arith.mulf");
inline const ir::OpId kDivF = ir::OpId::get("arith.divf");
inline const ir::OpId kAddI = ir::OpId::get("arith.addi");
inline const ir::OpId kSubI = ir::OpId::get("arith.subi");
inline const ir::OpId kMulI = ir::OpId::get("arith.muli");
inline const ir::OpId kCmpI = ir::OpId::get("arith.cmpi");
inline const ir::OpId kSelect = ir::OpId::get("arith.select");

void registerDialect(ir::Context &ctx);

/** Scalar f32 constant. */
ir::Value createConstantF32(ir::OpBuilder &b, double value);
/** Index-typed constant. */
ir::Value createConstantIndex(ir::OpBuilder &b, int64_t value);
/** i32 constant. */
ir::Value createConstantI32(ir::OpBuilder &b, int64_t value);
/** i16 constant. */
ir::Value createConstantI16(ir::OpBuilder &b, int64_t value);
/** Splat dense constant over a tensor/memref type. */
ir::Value createDenseConstant(ir::OpBuilder &b, ir::Type shapedType,
                              double splat);

/** Generic binary float op (both operands must have identical type). */
ir::Value createBinary(ir::OpBuilder &b, const std::string &opName,
                       ir::Value lhs, ir::Value rhs);

ir::Value createAddF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs);
ir::Value createSubF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs);
ir::Value createMulF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs);
ir::Value createDivF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs);
ir::Value createAddI(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs);

/** Integer comparison; predicate is one of lt, le, gt, ge, eq, ne. */
ir::Value createCmpI(ir::OpBuilder &b, const std::string &predicate,
                     ir::Value lhs, ir::Value rhs);

/** True when the op is one of the arith binary float ops. */
bool isBinaryFloatOp(ir::Operation *op);

/** True when the op is an arith.constant with a (splat) float payload. */
bool isFloatConstant(ir::Operation *op);

/** Splat/scalar float payload of an arith.constant. */
double floatConstantValue(ir::Operation *op);

} // namespace wsc::dialects::arith

#endif // WSC_DIALECTS_ARITH_H
