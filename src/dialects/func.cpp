#include "dialects/func.h"

#include "support/error.h"

namespace wsc::dialects::func {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("func"))
        return;
    registerSimpleOp(ctx, kFunc, {
        .numOperands = 0,
        .numResults = 0,
        .numRegions = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kSymName))
                return "func.func requires a sym_name attribute";
            if (!op->attr(ir::attrs::kFunctionType))
                return "func.func requires a function_type attribute";
            return "";
        },
    });
    registerSimpleOp(ctx, kReturn,
                     {.numResults = 0, .numRegions = 0,
                      .isTerminator = true});
    registerSimpleOp(ctx, kCall, {
        .numRegions = 0,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kCallee))
                return "func.call requires a callee attribute";
            return "";
        },
    });
}

ir::Operation *
createFunc(ir::OpBuilder &b, const std::string &name,
           const std::vector<ir::Type> &inputs,
           const std::vector<ir::Type> &results)
{
    ir::Context &ctx = b.context();
    ir::Type fnType = ir::getFunctionType(ctx, inputs, results);
    ir::Operation *fn = b.create(
        kFunc, {}, {},
        {{"sym_name", ir::getStringAttr(ctx, name)},
         {"function_type", ir::getTypeAttr(ctx, fnType)}},
        /*numRegions=*/1);
    ir::Block *entry = fn->region(0).addBlock();
    for (ir::Type t : inputs)
        entry->addArgument(t);
    return fn;
}

ir::Block *
funcBody(ir::Operation *funcOp)
{
    WSC_ASSERT(funcOp->opId() == kFunc, "funcBody on " << funcOp->name());
    return &funcOp->region(0).front();
}

const std::string &
funcName(ir::Operation *funcOp)
{
    return funcOp->strAttr(ir::attrs::kSymName);
}

std::vector<ir::Type>
funcResultTypes(ir::Operation *funcOp)
{
    return ir::functionResults(
        ir::typeAttrValue(funcOp->attr(ir::attrs::kFunctionType)));
}

ir::Operation *
createReturn(ir::OpBuilder &b, const std::vector<ir::Value> &values)
{
    return b.create(kReturn, values, {});
}

ir::Operation *
createCall(ir::OpBuilder &b, const std::string &callee,
           const std::vector<ir::Value> &operands,
           const std::vector<ir::Type> &results)
{
    return b.create(kCall, operands, results,
                    {{"callee", ir::getStringAttr(b.context(), callee)}});
}

} // namespace wsc::dialects::func
