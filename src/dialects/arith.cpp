#include "dialects/arith.h"

#include "support/error.h"

namespace wsc::dialects::arith {

namespace {

std::string
verifySameOperandAndResultType(ir::Operation *op)
{
    ir::Type t = op->operand(0).type();
    for (unsigned i = 1; i < op->numOperands(); ++i)
        if (op->operand(i).type() != t)
            return "operand types differ";
    if (op->result(0).type() != t)
        return "result type differs from operand type";
    return "";
}

} // namespace

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("arith"))
        return;
    registerSimpleOp(ctx, kConstant, {
        .numOperands = 0,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kValue))
                return "arith.constant requires a value attribute";
            return "";
        },
    });
    for (ir::OpId name : {kAddF, kSubF, kMulF, kDivF, kAddI, kSubI, kMulI})
        registerSimpleOp(ctx, name,
                         {.numOperands = 2, .numResults = 1,
                          .extraVerify = verifySameOperandAndResultType});
    registerSimpleOp(ctx, kCmpI, {
        .numOperands = 2,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kPredicate))
                return "arith.cmpi requires a predicate attribute";
            return "";
        },
    });
    registerSimpleOp(ctx, kSelect, {.numOperands = 3, .numResults = 1});
}

ir::Value
createConstantF32(ir::OpBuilder &b, double value)
{
    ir::Context &ctx = b.context();
    ir::Type f32 = ir::getF32Type(ctx);
    return b.create(kConstant, {}, {f32},
                    {{"value", ir::getFloatAttr(ctx, value, f32)}})
        ->result();
}

ir::Value
createConstantIndex(ir::OpBuilder &b, int64_t value)
{
    ir::Context &ctx = b.context();
    ir::Type t = ir::getIndexType(ctx);
    return b.create(kConstant, {}, {t},
                    {{"value", ir::getIntAttr(ctx, value, t)}})
        ->result();
}

ir::Value
createConstantI32(ir::OpBuilder &b, int64_t value)
{
    ir::Context &ctx = b.context();
    ir::Type t = ir::getI32Type(ctx);
    return b.create(kConstant, {}, {t},
                    {{"value", ir::getIntAttr(ctx, value, t)}})
        ->result();
}

ir::Value
createConstantI16(ir::OpBuilder &b, int64_t value)
{
    ir::Context &ctx = b.context();
    ir::Type t = ir::getI16Type(ctx);
    return b.create(kConstant, {}, {t},
                    {{"value", ir::getIntAttr(ctx, value, t)}})
        ->result();
}

ir::Value
createDenseConstant(ir::OpBuilder &b, ir::Type shapedType, double splat)
{
    ir::Context &ctx = b.context();
    return b.create(kConstant, {}, {shapedType},
                    {{"value", ir::getDenseAttr(ctx, shapedType, {splat})}})
        ->result();
}

ir::Value
createBinary(ir::OpBuilder &b, const std::string &opName, ir::Value lhs,
             ir::Value rhs)
{
    WSC_ASSERT(lhs.type() == rhs.type(),
               "createBinary operand type mismatch: " << lhs.type().str()
                   << " vs " << rhs.type().str());
    return b.create(opName, {lhs, rhs}, {lhs.type()})->result();
}

ir::Value
createAddF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
{
    return createBinary(b, kAddF, lhs, rhs);
}

ir::Value
createSubF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
{
    return createBinary(b, kSubF, lhs, rhs);
}

ir::Value
createMulF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
{
    return createBinary(b, kMulF, lhs, rhs);
}

ir::Value
createDivF(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
{
    return createBinary(b, kDivF, lhs, rhs);
}

ir::Value
createAddI(ir::OpBuilder &b, ir::Value lhs, ir::Value rhs)
{
    return createBinary(b, kAddI, lhs, rhs);
}

ir::Value
createCmpI(ir::OpBuilder &b, const std::string &predicate, ir::Value lhs,
           ir::Value rhs)
{
    ir::Context &ctx = b.context();
    return b.create(kCmpI, {lhs, rhs}, {ir::getI1Type(ctx)},
                    {{"predicate", ir::getStringAttr(ctx, predicate)}})
        ->result();
}

bool
isBinaryFloatOp(ir::Operation *op)
{
    ir::OpId n = op->opId();
    return n == kAddF || n == kSubF || n == kMulF || n == kDivF;
}

bool
isFloatConstant(ir::Operation *op)
{
    if (!isa(op, kConstant))
        return false;
    ir::Attribute v = op->attr(ir::attrs::kValue);
    return ir::isFloatAttr(v) ||
           (ir::isDenseAttr(v) && ir::denseAttrValues(v).size() == 1);
}

double
floatConstantValue(ir::Operation *op)
{
    WSC_ASSERT(isFloatConstant(op), "floatConstantValue on " << op->name());
    ir::Attribute v = op->attr(ir::attrs::kValue);
    if (ir::isFloatAttr(v))
        return ir::floatAttrValue(v);
    return ir::denseAttrValues(v)[0];
}

} // namespace wsc::dialects::arith
