#include "dialects/csl_wrapper.h"

#include "support/error.h"

namespace wsc::dialects::csl_wrapper {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("csl_wrapper"))
        return;
    registerSimpleOp(ctx, kModule, {
        .numOperands = 0,
        .numResults = 0,
        .numRegions = 2,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!op->attr(ir::attrs::kWidth) || !op->attr(ir::attrs::kHeight))
                return "csl_wrapper.module requires width/height";
            if (!op->attr(ir::attrs::kParams))
                return "csl_wrapper.module requires params";
            if (op->region(0).empty() || op->region(1).empty())
                return "csl_wrapper.module requires layout and program "
                       "blocks";
            if (op->region(0).front().numArguments() != 4)
                return "layout block must take (x, y, width, height)";
            return "";
        },
    });
    registerSimpleOp(ctx, kImport, {.numResults = 1});
    registerSimpleOp(ctx, kParam, {.numOperands = 0, .numResults = 1});
    registerSimpleOp(ctx, kYield,
                     {.numResults = 0, .numRegions = 0,
                      .isTerminator = true});
}

ir::Operation *
createModule(ir::OpBuilder &b, int64_t width, int64_t height,
             const std::vector<Param> &params,
             const std::string &programName)
{
    ir::Context &ctx = b.context();
    std::vector<ir::Attribute> paramAttrs;
    for (const Param &p : params) {
        paramAttrs.push_back(ir::getDictAttr(
            ctx, {{"name", ir::getStringAttr(ctx, p.name)},
                  {"value", ir::getIntAttr(ctx, p.value)}}));
    }
    ir::Operation *module = b.create(
        kModule, {}, {},
        {{"width", ir::getIntAttr(ctx, width)},
         {"height", ir::getIntAttr(ctx, height)},
         {"params", ir::getArrayAttr(ctx, paramAttrs)},
         {"program_name", ir::getStringAttr(ctx, programName)}},
        /*numRegions=*/2);
    ir::Type i16 = ir::getI16Type(ctx);
    ir::Block *layout = module->region(0).addBlock();
    for (int i = 0; i < 4; ++i)
        layout->addArgument(i16);
    ir::Block *program = module->region(1).addBlock();
    for (size_t i = 0; i < params.size(); ++i)
        program->addArgument(i16);
    return module;
}

ir::Block *
layoutBlock(ir::Operation *moduleOp)
{
    WSC_ASSERT(moduleOp->opId() == kModule,
               "layoutBlock on " << moduleOp->name());
    return &moduleOp->region(0).front();
}

ir::Block *
programBlock(ir::Operation *moduleOp)
{
    WSC_ASSERT(moduleOp->opId() == kModule,
               "programBlock on " << moduleOp->name());
    return &moduleOp->region(1).front();
}

std::vector<Param>
moduleParams(ir::Operation *moduleOp)
{
    std::vector<Param> out;
    for (ir::Attribute entry :
         ir::arrayAttrValue(moduleOp->attr(ir::attrs::kParams))) {
        Param p;
        p.name = ir::stringAttrValue(ir::dictAttrGet(entry, "name"));
        p.value = ir::intAttrValue(ir::dictAttrGet(entry, "value"));
        out.push_back(p);
    }
    return out;
}

std::pair<int64_t, int64_t>
moduleExtent(ir::Operation *moduleOp)
{
    return {moduleOp->intAttr(ir::attrs::kWidth), moduleOp->intAttr(ir::attrs::kHeight)};
}

ir::Value
createImport(ir::OpBuilder &b, const std::string &module,
             const std::vector<std::pair<std::string, ir::Value>> &fields)
{
    ir::Context &ctx = b.context();
    std::vector<ir::Value> operands;
    std::vector<ir::Attribute> names;
    for (const auto &[name, value] : fields) {
        names.push_back(ir::getStringAttr(ctx, name));
        operands.push_back(value);
    }
    return b.create(kImport, operands,
                    {ir::getType(ctx, "csl.comptime_struct")},
                    {{"module", ir::getStringAttr(ctx, module)},
                     {"fields", ir::getArrayAttr(ctx, names)}})
        ->result();
}

ir::Operation *
createYield(ir::OpBuilder &b, const std::vector<ir::Value> &values)
{
    return b.create(kYield, values, {});
}

} // namespace wsc::dialects::csl_wrapper
