/**
 * @file
 * Minimal tensor dialect: value-semantics aggregate manipulation used by
 * the chunked-communication regions (insert_slice of received chunks into
 * the accumulator).
 */

#ifndef WSC_DIALECTS_TENSOR_H
#define WSC_DIALECTS_TENSOR_H

#include "dialects/common.h"

namespace wsc::dialects::tensor {

inline const ir::OpId kEmpty = ir::OpId::get("tensor.empty");
inline const ir::OpId kInsertSlice = ir::OpId::get("tensor.insert_slice");
inline const ir::OpId kExtractSlice = ir::OpId::get("tensor.extract_slice");

void registerDialect(ir::Context &ctx);

/** Create an uninitialized tensor of the given type. */
ir::Value createEmpty(ir::OpBuilder &b, ir::Type tensorType);

/**
 * Insert `source` into `dest` at a dynamic 1-D `offset` (index value);
 * `size` elements with unit stride. Returns the updated tensor.
 */
ir::Value createInsertSlice(ir::OpBuilder &b, ir::Value source,
                            ir::Value dest, ir::Value offset, int64_t size);

/** Extract `size` elements at static `offset` (1-D, unit stride). */
ir::Value createExtractSlice(ir::OpBuilder &b, ir::Value source,
                             int64_t offset, int64_t size);

} // namespace wsc::dialects::tensor

#endif // WSC_DIALECTS_TENSOR_H
