/**
 * @file
 * The func dialect: functions, calls and returns.
 */

#ifndef WSC_DIALECTS_FUNC_H
#define WSC_DIALECTS_FUNC_H

#include <string>
#include <vector>

#include "dialects/common.h"

namespace wsc::dialects::func {

inline const ir::OpId kFunc = ir::OpId::get("func.func");
inline const ir::OpId kReturn = ir::OpId::get("func.return");
inline const ir::OpId kCall = ir::OpId::get("func.call");

void registerDialect(ir::Context &ctx);

/**
 * Create a func.func with the given symbol name and signature; the entry
 * block is created with matching arguments.
 */
ir::Operation *createFunc(ir::OpBuilder &b, const std::string &name,
                          const std::vector<ir::Type> &inputs,
                          const std::vector<ir::Type> &results);

/** The entry block of a func.func. */
ir::Block *funcBody(ir::Operation *funcOp);

/** Symbol name of a func.func. */
const std::string &funcName(ir::Operation *funcOp);

/** Result types of a func.func. */
std::vector<ir::Type> funcResultTypes(ir::Operation *funcOp);

/** Create func.return. */
ir::Operation *createReturn(ir::OpBuilder &b,
                            const std::vector<ir::Value> &values = {});

/** Create func.call to `callee`. */
ir::Operation *createCall(ir::OpBuilder &b, const std::string &callee,
                          const std::vector<ir::Value> &operands,
                          const std::vector<ir::Type> &results);

} // namespace wsc::dialects::func

#endif // WSC_DIALECTS_FUNC_H
