#include "dialects/memref.h"

#include "support/error.h"

namespace wsc::dialects::memref {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("memref"))
        return;
    registerSimpleOp(ctx, kAlloc, {
        .numOperands = 0,
        .numResults = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (!ir::isMemRef(op->result(0).type()))
                return "memref.alloc result must be a memref";
            return "";
        },
    });
    registerSimpleOp(ctx, kDealloc, {.numOperands = 1, .numResults = 0});
    registerSimpleOp(ctx, kCopy, {.numOperands = 2, .numResults = 0});
    registerSimpleOp(ctx, kSubview, {.minOperands = 1, .numResults = 1});
    registerSimpleOp(ctx, kLoad, {.minOperands = 1, .numResults = 1});
    registerSimpleOp(ctx, kStore, {.minOperands = 2, .numResults = 0});
}

ir::Value
createAlloc(ir::OpBuilder &b, ir::Type memrefType)
{
    WSC_ASSERT(ir::isMemRef(memrefType), "alloc requires a memref type");
    return b.create(kAlloc, {}, {memrefType})->result();
}

ir::Operation *
createCopy(ir::OpBuilder &b, ir::Value source, ir::Value dest)
{
    return b.create(kCopy, {source, dest}, {});
}

ir::Value
createSubview(ir::OpBuilder &b, ir::Value source, int64_t staticOffset,
              int64_t size, ir::Value dynOffset)
{
    ir::Context &ctx = b.context();
    ir::Type resultType =
        ir::getMemRefType(ctx, {size}, ir::elementTypeOf(source.type()));
    std::vector<ir::Value> operands = {source};
    if (dynOffset)
        operands.push_back(dynOffset);
    return b.create(kSubview, operands, {resultType},
                    {{"static_offset", ir::getIntAttr(ctx, staticOffset)},
                     {"static_size", ir::getIntAttr(ctx, size)}})
        ->result();
}

ir::Value
createLoad(ir::OpBuilder &b, ir::Value memref,
           const std::vector<ir::Value> &indices)
{
    std::vector<ir::Value> operands = {memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(kLoad, operands,
                    {ir::elementTypeOf(memref.type())})
        ->result();
}

ir::Operation *
createStore(ir::OpBuilder &b, ir::Value value, ir::Value memref,
            const std::vector<ir::Value> &indices)
{
    std::vector<ir::Value> operands = {value, memref};
    operands.insert(operands.end(), indices.begin(), indices.end());
    return b.create(kStore, operands, {});
}

} // namespace wsc::dialects::memref
