#include "dialects/common.h"

namespace wsc::dialects {

void
registerSimpleOp(ir::Context &ctx, ir::OpId id, SimpleOpSpec spec)
{
    ir::OpInfo info;
    info.isTerminator = spec.isTerminator;
    // This hook runs for every op on every inter-pass verification;
    // diagnostics are built only on the (cold) failure paths so the
    // success path allocates nothing.
    info.verify = [spec](ir::Operation *op) -> std::string {
        if (spec.numOperands >= 0 &&
            op->numOperands() != static_cast<unsigned>(spec.numOperands))
            return "expected " + std::to_string(spec.numOperands) +
                   " operands, got " + std::to_string(op->numOperands());
        if (spec.minOperands >= 0 &&
            op->numOperands() < static_cast<unsigned>(spec.minOperands))
            return "expected at least " + std::to_string(spec.minOperands) +
                   " operands, got " + std::to_string(op->numOperands());
        if (spec.numResults >= 0 &&
            op->numResults() != static_cast<unsigned>(spec.numResults))
            return "expected " + std::to_string(spec.numResults) +
                   " results, got " + std::to_string(op->numResults());
        if (op->numRegions() != static_cast<unsigned>(spec.numRegions))
            return "expected " + std::to_string(spec.numRegions) +
                   " regions, got " + std::to_string(op->numRegions());
        if (spec.extraVerify)
            return spec.extraVerify(op);
        return "";
    };
    ctx.registerOp(id, std::move(info));
}

} // namespace wsc::dialects
