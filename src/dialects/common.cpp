#include "dialects/common.h"

#include <sstream>

namespace wsc::dialects {

void
registerSimpleOp(ir::Context &ctx, ir::OpId id, SimpleOpSpec spec)
{
    ir::OpInfo info;
    info.isTerminator = spec.isTerminator;
    info.verify = [spec](ir::Operation *op) -> std::string {
        std::ostringstream os;
        if (spec.numOperands >= 0 &&
            op->numOperands() != static_cast<unsigned>(spec.numOperands)) {
            os << "expected " << spec.numOperands << " operands, got "
               << op->numOperands();
            return os.str();
        }
        if (spec.minOperands >= 0 &&
            op->numOperands() < static_cast<unsigned>(spec.minOperands)) {
            os << "expected at least " << spec.minOperands
               << " operands, got " << op->numOperands();
            return os.str();
        }
        if (spec.numResults >= 0 &&
            op->numResults() != static_cast<unsigned>(spec.numResults)) {
            os << "expected " << spec.numResults << " results, got "
               << op->numResults();
            return os.str();
        }
        if (op->numRegions() != static_cast<unsigned>(spec.numRegions)) {
            os << "expected " << spec.numRegions << " regions, got "
               << op->numRegions();
            return os.str();
        }
        if (spec.extraVerify)
            return spec.extraVerify(op);
        return "";
    };
    ctx.registerOp(id, std::move(info));
}

} // namespace wsc::dialects
