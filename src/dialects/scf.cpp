#include "dialects/scf.h"

#include "support/error.h"

namespace wsc::dialects::scf {

void
registerDialect(ir::Context &ctx)
{
    if (!ctx.markDialectLoaded("scf"))
        return;
    registerSimpleOp(ctx, kFor, {
        .minOperands = 3,
        .numRegions = 1,
        .extraVerify = [](ir::Operation *op) -> std::string {
            unsigned n_iter = op->numOperands() - 3;
            if (op->numResults() != n_iter)
                return "scf.for result count must match iter_args";
            if (op->region(0).empty())
                return "scf.for requires a body block";
            ir::Block &body = op->region(0).front();
            if (body.numArguments() != n_iter + 1)
                return "scf.for body must take (iv, iterArgs...)";
            return "";
        },
    });
    registerSimpleOp(ctx, kIf, {
        .numOperands = 1,
        .numRegions = 2,
        .extraVerify = [](ir::Operation *op) -> std::string {
            if (op->region(0).empty())
                return "scf.if requires a then block";
            return "";
        },
    });
    registerSimpleOp(ctx, kYield,
                     {.numResults = 0, .numRegions = 0,
                      .isTerminator = true});
}

ir::Operation *
createFor(ir::OpBuilder &b, ir::Value lb, ir::Value ub, ir::Value step,
          const std::vector<ir::Value> &iterInits)
{
    std::vector<ir::Value> operands = {lb, ub, step};
    std::vector<ir::Type> resultTypes;
    for (ir::Value v : iterInits) {
        operands.push_back(v);
        resultTypes.push_back(v.type());
    }
    ir::Operation *forOp =
        b.create(kFor, operands, resultTypes, {}, /*numRegions=*/1);
    ir::Block *body = forOp->region(0).addBlock();
    body->addArgument(lb.type());
    for (ir::Value v : iterInits)
        body->addArgument(v.type());
    return forOp;
}

ir::Block *
forBody(ir::Operation *forOp)
{
    WSC_ASSERT(forOp->opId() == kFor, "forBody on " << forOp->name());
    return &forOp->region(0).front();
}

ir::Value
forInductionVar(ir::Operation *forOp)
{
    return forBody(forOp)->argument(0);
}

std::vector<ir::Value>
forIterArgs(ir::Operation *forOp)
{
    std::vector<ir::Value> args = forBody(forOp)->arguments();
    return {args.begin() + 1, args.end()};
}

std::vector<ir::Value>
forIterInits(ir::Operation *forOp)
{
    ir::ValueRange ops = forOp->operands();
    return {ops.begin() + 3, ops.end()};
}

ir::Operation *
createIf(ir::OpBuilder &b, ir::Value condition,
         const std::vector<ir::Type> &resultTypes, bool withElse)
{
    ir::Operation *ifOp =
        b.create(kIf, {condition}, resultTypes, {}, /*numRegions=*/2);
    ifOp->region(0).addBlock();
    if (withElse)
        ifOp->region(1).addBlock();
    return ifOp;
}

ir::Block *
ifThenBlock(ir::Operation *ifOp)
{
    WSC_ASSERT(ifOp->opId() == kIf, "ifThenBlock on " << ifOp->name());
    return &ifOp->region(0).front();
}

ir::Block *
ifElseBlock(ir::Operation *ifOp)
{
    WSC_ASSERT(ifOp->opId() == kIf && !ifOp->region(1).empty(),
               "ifElseBlock on if without else");
    return &ifOp->region(1).front();
}

ir::Operation *
createYield(ir::OpBuilder &b, const std::vector<ir::Value> &values)
{
    return b.create(kYield, values, {});
}

} // namespace wsc::dialects::scf
