#include "wse/fabric.h"

#include <algorithm>
#include <memory>

#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::wse {

std::pair<int, int>
directionStep(Direction d)
{
    switch (d) {
      case Direction::East:
        return {1, 0};
      case Direction::West:
        return {-1, 0};
      case Direction::North:
        return {0, -1};
      case Direction::South:
        return {0, 1};
    }
    panic("unreachable direction");
}

const char *
directionName(Direction d)
{
    switch (d) {
      case Direction::East:
        return "E";
      case Direction::West:
        return "W";
      case Direction::North:
        return "N";
      case Direction::South:
        return "S";
    }
    panic("unreachable direction");
}

const std::vector<Direction> &
allDirections()
{
    static const std::vector<Direction> dirs = {
        Direction::East, Direction::West, Direction::North,
        Direction::South};
    return dirs;
}

Fabric::Fabric(Simulator &sim) : sim_(sim)
{
    linkFree_.assign(static_cast<size_t>(sim_.width()) * sim_.height() * 4,
                     0);
}

size_t
Fabric::linkIndex(int x, int y, Direction dir) const
{
    return (static_cast<size_t>(x) * sim_.height() + y) * 4 +
           static_cast<size_t>(dir);
}

Cycles
Fabric::reserveLink(int x, int y, Direction dir, Cycles from, Cycles n)
{
    Cycles &free = linkFree_[linkIndex(x, y, dir)];
    Cycles start = std::max(from, free);
    free = start + n;
    return start;
}

Cycles
Fabric::linkFree(int x, int y, Direction dir) const
{
    return linkFree_[linkIndex(x, y, dir)];
}

void
Fabric::applyFaultPlan(const FaultPlan &plan)
{
    faultSeed_ = plan.seed;
    const size_t links = linkFree_.size();
    auto checkLink = [&](int x, int y, const char *what) {
        if (x < 0 || x >= sim_.width() || y < 0 || y >= sim_.height())
            fatal(strcat("fault plan ", what, " targets PE (", x, ", ", y,
                         ") outside the grid"));
    };
    if (!plan.linkFaults.empty()) {
        linkFaultsEnabled_ = true;
        linkDownAt_.assign(links, kNeverCycle);
        linkExtraFrom_.assign(links, kNeverCycle);
        linkExtraCycles_.assign(links, 0);
        for (const LinkFault &f : plan.linkFaults) {
            checkLink(f.x, f.y, "link fault");
            size_t li = linkIndex(f.x, f.y, f.dir);
            if (f.kind == LinkFaultKind::Drop) {
                linkDownAt_[li] = std::min(linkDownAt_[li], f.at);
            } else {
                linkExtraFrom_[li] = std::min(linkExtraFrom_[li], f.at);
                linkExtraCycles_[li] =
                    std::max(linkExtraCycles_[li], f.extraHopCycles);
            }
        }
    }
    if (!plan.payloadFaults.empty()) {
        payloadFaultsEnabled_ = true;
        linkStreamCount_.assign(links, 0);
        payloadFaultsOfLink_.assign(links, {});
        for (const PayloadFault &f : plan.payloadFaults) {
            checkLink(f.x, f.y, "payload fault");
            payloadFaultsOfLink_[linkIndex(f.x, f.y, f.dir)].push_back(
                {f.nthStream, f.kind == PayloadFaultKind::Corrupt});
        }
    }
}

Cycles
Fabric::linkExtra(size_t li, Cycles start) const
{
    if (!linkFaultsEnabled_ || start < linkExtraFrom_[li])
        return 0;
    return linkExtraCycles_[li];
}

PayloadRef
Fabric::corruptCopy(Pe &sender, const PayloadRef &payload, size_t li,
                    uint64_t nth)
{
    // The chunk slot is shared by every direction's stream; corrupting
    // in place would leak the fault onto healthy links. Copy, flip one
    // seeded element, and send the copy down this link only.
    PayloadRef copy = sender.payloadPool().acquire();
    copy.mutableData() = payload.data();
    std::vector<float> &data = copy.mutableData();
    uint64_t key =
        faultMix(faultSeed_ ^ (static_cast<uint64_t>(li) << 20) ^ nth);
    data[static_cast<size_t>(key % data.size())] =
        faultCorruptionValue(faultSeed_, key);
    copy.markCorrupted();
    return copy;
}

void
Fabric::collectBusyLinks(Cycles after, size_t maxRows,
                         std::vector<BusyLinkInfo> &out) const
{
    for (int x = 0; x < sim_.width(); ++x) {
        for (int y = 0; y < sim_.height(); ++y) {
            for (int d = 0; d < 4; ++d) {
                Direction dir = static_cast<Direction>(d);
                Cycles free = linkFree_[linkIndex(x, y, dir)];
                if (free <= after)
                    continue;
                out.push_back({x, y, dir, free});
                if (out.size() >= maxRows)
                    return;
            }
        }
    }
}

uint64_t
Fabric::waveletHops() const
{
    return sim_.fabricHops();
}

Cycles
Fabric::switchReconfig(int x, int y, Direction dir, Cycles notBefore)
{
    return reserveLink(x, y, dir, notBefore,
                       sim_.params().switchReconfigCycles) +
           sim_.params().switchReconfigCycles;
}

namespace {

/** Encode delivery distances as the hop bitmask (hops must be 1..31). */
uint32_t
deliverMaskOf(const std::vector<int> &deliverDistances)
{
    uint32_t mask = 0;
    for (int d : deliverDistances) {
        WSC_ASSERT(d >= 1 && d < 32, "delivery distance " << d
                                                          << " out of range");
        mask |= 1u << d;
    }
    return mask;
}

} // namespace

Cycles
Fabric::sendStream(int x, int y, Direction dir,
                   const std::vector<int> &deliverDistances,
                   std::vector<float> payload, Cycles notBefore,
                   const DeliveryFn &deliver)
{
    PayloadRef slot = sim_.pe(x, y).payloadPool().acquire();
    slot.mutableData() = std::move(payload);
    return sendStream(x, y, dir, deliverMaskOf(deliverDistances),
                      std::move(slot), notBefore,
                      std::make_shared<const DeliveryFn>(deliver));
}

Cycles
Fabric::sendStream(int x, int y, Direction dir,
                   const std::vector<int> &deliverDistances,
                   std::shared_ptr<const std::vector<float>> payload,
                   Cycles notBefore,
                   std::shared_ptr<const DeliveryFn> deliver)
{
    PayloadRef slot = sim_.pe(x, y).payloadPool().acquire();
    slot.mutableData() = *payload;
    return sendStream(x, y, dir, deliverMaskOf(deliverDistances),
                      std::move(slot), notBefore, std::move(deliver));
}

Cycles
Fabric::sendStream(int x, int y, Direction dir, uint32_t deliverMask,
                   PayloadRef payload, Cycles notBefore,
                   std::shared_ptr<const DeliveryFn> deliver)
{
    const ArchParams &p = sim_.params();
    const Cycles m = payload.data().size();
    WSC_ASSERT(m > 0, "empty stream");
    WSC_ASSERT(deliverMask != 0, "stream without deliveries");
    int maxDistance = 31;
    while (maxDistance > 0 && !(deliverMask >> maxDistance & 1))
        --maxDistance;

    // Injection: the sender's ramp moves m wavelets to its router.
    Pe &sender = sim_.pe(x, y);
    Cycles inject = sender.reserveWork(notBefore, m);
    Cycles injectDone = inject + m;

    // WSE2 switch configurations force a self-copy: the stream also
    // re-enters the sender's ramp, occupying it like a real reception.
    if (p.switchRequiresSelfTransmit)
        sender.reserveWork(injectDone, m);

    auto [dx, dy] = directionStep(dir);
    int nx = x + dx;
    int ny = y + dy;
    if (nx >= 0 && nx < sim_.width() && ny >= 0 && ny < sim_.height()) {
        size_t li = linkIndex(x, y, dir);
        bool dropPayload = false;
        if (payloadFaultsEnabled_) {
            // The injection ordinal is counted by the sender-owned
            // call, so which stream a fault hits is independent of the
            // thread count AND of the shard tiling — per-link send
            // order is fixed by the deterministic event key, not by
            // which shard the link lands in.
            uint64_t nth = linkStreamCount_[li]++;
            for (const PayloadFaultEntry &f : payloadFaultsOfLink_[li]) {
                if (f.nthStream != nth)
                    continue;
                if (f.corrupt) {
                    payload = corruptCopy(sender, payload, li, nth);
                    sender.shard().faultStats().payloadsCorrupted++;
                } else {
                    dropPayload = true;
                    sender.shard().faultStats().payloadsDropped++;
                }
            }
        }
        if (linkFaultsEnabled_ && linkDownAt_[li] <= inject) {
            // Dead link: the wavelets leave the ramp and vanish.
            sender.shard().faultStats().streamsDroppedByLinks++;
            return injectDone;
        }
        // The first hop's link belongs to the sender; reserve it at
        // injection time, then hand the stream to the segment chain.
        Cycles linkStart = reserveLink(x, y, dir, inject, m);
        Cycles headArrives =
            linkStart + p.hopCycles + linkExtra(li, linkStart);
        sender.shard().fabricHops_ += m;
        sender.shardStats().waveletsSent += m;
        if (dropPayload)
            return injectDone; // Lost in flight after the first hop.
        // currentShard(), not the sender's home shard: host-initiated
        // sends must draw their sequence numbers from the single host
        // counter or same-key ties become thread-count dependent.
        sim_.scheduleOnPe(
            sim_.peIndex(nx, ny), headArrives,
            Segment{this, std::move(payload), std::move(deliver),
                    static_cast<int16_t>(nx), static_cast<int16_t>(ny),
                    static_cast<uint8_t>(dir), 1,
                    static_cast<uint8_t>(maxDistance), deliverMask},
            sim_.currentShard());
    }
    return injectDone;
}

void
Fabric::segmentArrive(Segment &seg)
{
    Pe &router = sim_.pe(seg.x, seg.y);
    Cycles headAt = router.now(); // the event fires at head arrival
    const Cycles m = seg.payload.data().size();

    if (seg.mask >> seg.hop & 1) {
        // Forward-and-deliver: the ramp transfer occupies the receiving
        // PE's work timeline; the chunk has landed when both the ramp
        // and the stream tail are done.
        Cycles rampStart = router.reserveWork(headAt, m);
        Cycles landed = std::max(rampStart + m, headAt + m);
        StreamDelivery record{seg.x, seg.y, seg.hop, landed, seg.payload};
        std::shared_ptr<const DeliveryFn> deliver = seg.deliver;
        router.shard().push(
            router.id(), landed,
            [deliver = std::move(deliver),
             record = std::move(record)]() mutable {
                (*deliver)(record, record.payload.data());
            });
    }

    if (seg.hop < seg.maxDist)
        forward(seg, router, headAt, m);
}

void
Fabric::forward(Segment &seg, Pe &router, Cycles headAt, Cycles m)
{
    const ArchParams &p = sim_.params();
    Direction dir = static_cast<Direction>(seg.dir);
    auto [dx, dy] = directionStep(dir);
    int nx = seg.x + dx;
    int ny = seg.y + dy;
    if (nx < 0 || nx >= sim_.width() || ny < 0 || ny >= sim_.height())
        return; // Edge of the grid: the route is truncated.

    size_t li = linkIndex(seg.x, seg.y, dir);
    if (linkFaultsEnabled_ && linkDownAt_[li] <= headAt) {
        // Mid-path link death: deliveries before this hop happened,
        // everything beyond it is lost.
        router.shard().faultStats().streamsDroppedByLinks++;
        return;
    }

    // Wormhole forwarding: the outgoing link belongs to this router, so
    // the reservation is shard-local and time-ordered.
    Cycles linkStart = reserveLink(seg.x, seg.y, dir, headAt, m);
    Cycles headArrives = linkStart + p.hopCycles + linkExtra(li, linkStart);
    router.shard().fabricHops_ += m;
    router.shardStats().waveletsSent += m;

    Segment next = seg; // copies the payload/deliver references
    next.x = static_cast<int16_t>(nx);
    next.y = static_cast<int16_t>(ny);
    next.hop = static_cast<uint8_t>(seg.hop + 1);
    sim_.scheduleOnPe(sim_.peIndex(nx, ny), headArrives, std::move(next),
                      sim_.currentShard());
}

} // namespace wsc::wse
