#include "wse/fabric.h"

#include <memory>

#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::wse {

std::pair<int, int>
directionStep(Direction d)
{
    switch (d) {
      case Direction::East:
        return {1, 0};
      case Direction::West:
        return {-1, 0};
      case Direction::North:
        return {0, -1};
      case Direction::South:
        return {0, 1};
    }
    panic("unreachable direction");
}

const char *
directionName(Direction d)
{
    switch (d) {
      case Direction::East:
        return "E";
      case Direction::West:
        return "W";
      case Direction::North:
        return "N";
      case Direction::South:
        return "S";
    }
    panic("unreachable direction");
}

const std::vector<Direction> &
allDirections()
{
    static const std::vector<Direction> dirs = {
        Direction::East, Direction::West, Direction::North,
        Direction::South};
    return dirs;
}

Fabric::Fabric(Simulator &sim) : sim_(sim)
{
    linkFree_.assign(static_cast<size_t>(sim_.width()) * sim_.height() * 4,
                     0);
}

size_t
Fabric::linkIndex(int x, int y, Direction dir) const
{
    return (static_cast<size_t>(x) * sim_.height() + y) * 4 +
           static_cast<size_t>(dir);
}

Cycles
Fabric::reserveLink(int x, int y, Direction dir, Cycles from, Cycles n)
{
    Cycles &free = linkFree_[linkIndex(x, y, dir)];
    Cycles start = std::max(from, free);
    free = start + n;
    return start;
}

Cycles
Fabric::linkFree(int x, int y, Direction dir) const
{
    return linkFree_[linkIndex(x, y, dir)];
}

Cycles
Fabric::switchReconfig(int x, int y, Direction dir, Cycles notBefore)
{
    return reserveLink(x, y, dir, notBefore,
                       sim_.params().switchReconfigCycles) +
           sim_.params().switchReconfigCycles;
}

Cycles
Fabric::sendStream(int x, int y, Direction dir,
                   const std::vector<int> &deliverDistances,
                   std::vector<float> payload, Cycles notBefore,
                   const DeliveryFn &deliver)
{
    // One shared snapshot + functor serve every delivery event of this
    // stream (delivery lambdas capture pointers, not copies).
    return sendStream(
        x, y, dir, deliverDistances,
        std::make_shared<const std::vector<float>>(std::move(payload)),
        notBefore, std::make_shared<const DeliveryFn>(deliver));
}

Cycles
Fabric::sendStream(int x, int y, Direction dir,
                   const std::vector<int> &deliverDistances,
                   std::shared_ptr<const std::vector<float>> payload,
                   Cycles notBefore,
                   std::shared_ptr<const DeliveryFn> deliver)
{
    const ArchParams &p = sim_.params();
    const Cycles m = payload->size();
    WSC_ASSERT(m > 0, "empty stream");
    WSC_ASSERT(!deliverDistances.empty(), "stream without deliveries");
    auto [dx, dy] = directionStep(dir);
    int maxDistance = *std::max_element(deliverDistances.begin(),
                                        deliverDistances.end());
    std::shared_ptr<const std::vector<float>> snapshot =
        std::move(payload);
    std::shared_ptr<const DeliveryFn> deliverShared = std::move(deliver);

    // Injection: the sender's ramp moves m wavelets to its router.
    Pe &sender = sim_.pe(x, y);
    Cycles inject = sender.reserveWork(notBefore, m);
    Cycles injectDone = inject + m;

    // WSE2 switch configurations force a self-copy: the stream also
    // re-enters the sender's ramp, occupying it like a real reception.
    if (p.switchRequiresSelfTransmit)
        sender.reserveWork(injectDone, m);

    // Wormhole forwarding: hop h's stream starts after the previous hop's
    // head arrives; each hop's link serializes overlapping streams.
    Cycles headAt = inject;
    int cx = x;
    int cy = y;
    for (int h = 1; h <= maxDistance; ++h) {
        int nx = cx + dx;
        int ny = cy + dy;
        if (nx < 0 || nx >= sim_.width() || ny < 0 || ny >= sim_.height())
            break; // Edge of the grid: the route is truncated.
        // The link from (cx, cy) towards dir carries this stream.
        Cycles linkStart =
            reserveLink(cx, cy, dir, headAt, m);
        Cycles headArrives = linkStart + p.hopCycles;
        waveletHops_ += m;
        sim_.stats().waveletsSent += m;

        bool deliverHere =
            std::find(deliverDistances.begin(), deliverDistances.end(),
                      h) != deliverDistances.end();
        if (deliverHere) {
            // Deliver to the PE at this hop (forward-and-deliver).
            Pe &receiver = sim_.pe(nx, ny);
            Cycles rampStart = receiver.reserveWork(headArrives, m);
            Cycles landed = std::max(rampStart + m, headArrives + m);
            StreamDelivery record{nx, ny, h, landed};
            sim_.schedule(landed, [deliverShared, record, snapshot] {
                (*deliverShared)(record, *snapshot);
            });
        }

        headAt = headArrives;
        cx = nx;
        cy = ny;
    }
    return injectDone;
}

} // namespace wsc::wse
