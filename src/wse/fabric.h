/**
 * @file
 * Fabric model: per-link wavelet stream reservations between neighbouring
 * routers, multicast (forward-and-deliver) routes used by star-shaped
 * stencil communication, and the WSE2 self-transmit behaviour.
 *
 * A stream is simulated as a chain of per-hop segment events: the event
 * at router h fires when the stream head arrives there, performs the
 * local ramp delivery (when h is a delivery hop) and reserves the next
 * outgoing link. Because each hop's link and the receiving PE's work
 * timeline belong to that router's own PE, every mutation a segment
 * performs is local to the shard tile executing it, and a segment
 * crossing a tile boundary (E/W or N/S) always lies at least one hop
 * latency in the future. Segments advance one grid hop at a time, so an
 * event k hops inside a tile cannot reach a foreign shard for at least
 * k hop latencies — the conservative-window guarantee (fixed and
 * adaptive) the sharded simulator relies on.
 *
 * Payloads are carried by reference-counted PayloadRef handles into the
 * sending shard's recycled ring (wse/payload.h): one chunk fanned out in
 * several directions shares one buffer and copies nothing per delivery.
 */

#ifndef WSC_WSE_FABRIC_H
#define WSC_WSE_FABRIC_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wse/arch_params.h"
#include "wse/payload.h"

namespace wsc::wse {

class Simulator;
class Pe;
struct FaultPlan;
struct BusyLinkInfo;

/** The four cardinal routing directions. */
enum class Direction { East, West, North, South };

/** Unit step of a direction in grid coordinates. */
std::pair<int, int> directionStep(Direction d);
/** Short name ("E", "W", "N", "S"). */
const char *directionName(Direction d);
/** All four directions in library send order. */
const std::vector<Direction> &allDirections();

/**
 * Completion record handed to a stream delivery callback. Holds a
 * reference to the payload slot, pinning it until the callback's event
 * is destroyed (or longer, if the callback retains the reference).
 */
struct StreamDelivery
{
    int peX = 0;          ///< receiving PE
    int peY = 0;
    int distance = 1;     ///< hops from the sender
    Cycles completeAt = 0;///< cycle at which the chunk fully landed
    PayloadRef payload;   ///< the delivered chunk (refcounted)
};

using DeliveryFn = std::function<void(const StreamDelivery &,
                                      const std::vector<float> &payload)>;

/**
 * Models the wafer interconnect between the simulated PEs. Each link
 * (one per direction per PE pair) carries one wavelet per cycle; a
 * multi-hop multicast stream reserves every link along its path as its
 * head reaches it, so contention between overlapping streams emerges
 * from time-ordered reservations.
 */
class Fabric
{
  public:
    explicit Fabric(Simulator &sim);

    /**
     * Send a chunk of `payload.size()` wavelets from PE (x, y) towards
     * `dir`, forwarding up to max(deliverDistances) hops and delivering
     * to the PEs at exactly the listed hop distances (forward-and-deliver
     * multicast; hops not listed forward without a ramp delivery).
     * Streams that would leave the grid are truncated at the edge.
     *
     * `notBefore` is the earliest injection cycle; injection also
     * reserves the sender's work timeline (ramp-to-router transfer). On
     * architectures with switchRequiresSelfTransmit the sender receives
     * its own copy, occupying its work timeline like a real reception.
     *
     * `deliver` runs once per receiving PE at chunk-landed time, after
     * the receiver's work timeline reservation for the ramp transfer.
     *
     * Returns the cycle at which injection completes on the sender.
     */
    Cycles sendStream(int x, int y, Direction dir,
                      const std::vector<int> &deliverDistances,
                      std::vector<float> payload, Cycles notBefore,
                      const DeliveryFn &deliver);

    /**
     * sendStream variant taking an already-shared payload snapshot
     * (compatibility surface; the bytes are moved into a recycled ring
     * slot of the sender's shard).
     */
    Cycles sendStream(int x, int y, Direction dir,
                      const std::vector<int> &deliverDistances,
                      std::shared_ptr<const std::vector<float>> payload,
                      Cycles notBefore,
                      std::shared_ptr<const DeliveryFn> deliver);

    /**
     * The allocation-free hot path: the payload already lives in a ring
     * slot and the delivery hops are encoded as a bitmask (bit h set =
     * deliver at hop h; hops must be < 32).
     */
    Cycles sendStream(int x, int y, Direction dir, uint32_t deliverMask,
                      PayloadRef payload, Cycles notBefore,
                      std::shared_ptr<const DeliveryFn> deliver);

    /**
     * Charge the per-direction switch reconfiguration overhead at the
     * sending router (advancing switch positions between chunks).
     */
    Cycles switchReconfig(int x, int y, Direction dir, Cycles notBefore);

    /** Next free cycle of the outgoing link at (x, y) towards dir. */
    Cycles linkFree(int x, int y, Direction dir) const;

    /** Total wavelet-hops carried so far (summed across shards). */
    uint64_t waveletHops() const;

    /**
     * Install the fault plan's link failure/degradation tables and
     * per-link payload fault schedules (called once by the Simulator
     * constructor). An empty plan leaves every fault branch disabled
     * and the hot path byte-identical to a fault-free build.
     */
    void applyFaultPlan(const FaultPlan &plan);

    /** Links still reserved past `after` (diagnosis; ≤ maxRows rows). */
    void collectBusyLinks(Cycles after, size_t maxRows,
                          std::vector<BusyLinkInfo> &out) const;

  private:
    /** In-flight stream state between two hop events. */
    struct Segment
    {
        Fabric *fab;
        PayloadRef payload;
        std::shared_ptr<const DeliveryFn> deliver;
        int16_t x, y;       ///< router the head is arriving at
        uint8_t dir;        ///< Direction
        uint8_t hop;        ///< hop distance of (x, y) from the sender
        uint8_t maxDist;    ///< last hop of the route
        uint32_t mask;      ///< deliver-at-hop bitmask

        void operator()() { fab->segmentArrive(*this); }
    };

    /** Runs at head-arrival time on the shard owning router (x, y). */
    void segmentArrive(Segment &seg);
    /** Reserve the next link and schedule the following segment. */
    void forward(Segment &seg, Pe &router, Cycles headAt, Cycles m);

    /** Reserve `n` wavelet slots on a link; returns the actual start. */
    Cycles reserveLink(int x, int y, Direction dir, Cycles from, Cycles n);

    /** Flat index of the outgoing link at (x, y) towards dir. */
    size_t linkIndex(int x, int y, Direction dir) const;

    /** Degrade latency of link `li` for a head starting at `start`. */
    Cycles linkExtra(size_t li, Cycles start) const;
    /** Copy-and-corrupt a payload for one faulted stream (the original
     *  slot may be shared with other directions of the same chunk). */
    PayloadRef corruptCopy(Pe &sender, const PayloadRef &payload,
                           size_t li, uint64_t nth);

    Simulator &sim_;
    /** Dense per-link next-free-cycle table, sized width*height*4 at
     *  construction. Each link is only ever touched by events owned by
     *  its own PE, so entries are shard-partitioned by tile. */
    std::vector<Cycles> linkFree_;

    /// @name Fault injection (wse/fault.h)
    /// All tables are indexed like linkFree_ and, like it, only touched
    /// by events owned by the link's PE — mutation stays owner-
    /// partitioned and the injected behaviour thread-count independent.
    /// @{
    /** One scheduled payload fault on a link. */
    struct PayloadFaultEntry
    {
        uint64_t nthStream;
        bool corrupt; ///< false = drop
    };
    bool linkFaultsEnabled_ = false;
    bool payloadFaultsEnabled_ = false;
    uint64_t faultSeed_ = 0;
    /** Cycle each link dies (never by default). */
    std::vector<Cycles> linkDownAt_;
    /** Start of each link's degradation window (never by default). */
    std::vector<Cycles> linkExtraFrom_;
    /** Extra cycles per hop once degraded. */
    std::vector<Cycles> linkExtraCycles_;
    /** Injection ordinal per link (payload fault selection). */
    std::vector<uint64_t> linkStreamCount_;
    /** Scheduled payload faults per link. */
    std::vector<std::vector<PayloadFaultEntry>> payloadFaultsOfLink_;
    /// @}
};

} // namespace wsc::wse

#endif // WSC_WSE_FABRIC_H
