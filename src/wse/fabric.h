/**
 * @file
 * Fabric model: per-link wavelet stream reservations between neighbouring
 * routers, multicast (forward-and-deliver) routes used by star-shaped
 * stencil communication, and the WSE2 self-transmit behaviour.
 */

#ifndef WSC_WSE_FABRIC_H
#define WSC_WSE_FABRIC_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wse/arch_params.h"

namespace wsc::wse {

class Simulator;

/** The four cardinal routing directions. */
enum class Direction { East, West, North, South };

/** Unit step of a direction in grid coordinates. */
std::pair<int, int> directionStep(Direction d);
/** Short name ("E", "W", "N", "S"). */
const char *directionName(Direction d);
/** All four directions in library send order. */
const std::vector<Direction> &allDirections();

/**
 * Completion record handed to a stream delivery callback.
 */
struct StreamDelivery
{
    int peX = 0;          ///< receiving PE
    int peY = 0;
    int distance = 1;     ///< hops from the sender
    Cycles completeAt = 0;///< cycle at which the chunk fully landed
};

using DeliveryFn = std::function<void(const StreamDelivery &,
                                      const std::vector<float> &payload)>;

/**
 * Models the wafer interconnect between the simulated PEs. Each link
 * (one per direction per PE pair) carries one wavelet per cycle; a
 * multi-hop multicast stream reserves every link along its path, so
 * contention between overlapping streams emerges from the reservations.
 */
class Fabric
{
  public:
    explicit Fabric(Simulator &sim);

    /**
     * Send a chunk of `payload.size()` wavelets from PE (x, y) towards
     * `dir`, forwarding up to max(deliverDistances) hops and delivering
     * to the PEs at exactly the listed hop distances (forward-and-deliver
     * multicast; hops not listed forward without a ramp delivery).
     * Streams that would leave the grid are truncated at the edge.
     *
     * `notBefore` is the earliest injection cycle; injection also
     * reserves the sender's work timeline (ramp-to-router transfer). On
     * architectures with switchRequiresSelfTransmit the sender receives
     * its own copy, occupying its work timeline like a real reception.
     *
     * `deliver` runs once per receiving PE at chunk-landed time, after
     * the receiver's work timeline reservation for the ramp transfer.
     *
     * Returns the cycle at which injection completes on the sender.
     */
    Cycles sendStream(int x, int y, Direction dir,
                      const std::vector<int> &deliverDistances,
                      std::vector<float> payload, Cycles notBefore,
                      const DeliveryFn &deliver);

    /**
     * sendStream variant taking an already-shared payload snapshot, so
     * one chunk fanned out in several directions is copied once (all
     * delivery events of all streams reference the same snapshot).
     */
    Cycles sendStream(int x, int y, Direction dir,
                      const std::vector<int> &deliverDistances,
                      std::shared_ptr<const std::vector<float>> payload,
                      Cycles notBefore,
                      std::shared_ptr<const DeliveryFn> deliver);

    /**
     * Charge the per-direction switch reconfiguration overhead at the
     * sending router (advancing switch positions between chunks).
     */
    Cycles switchReconfig(int x, int y, Direction dir, Cycles notBefore);

    /** Next free cycle of the outgoing link at (x, y) towards dir. */
    Cycles linkFree(int x, int y, Direction dir) const;

    /** Total wavelet-hops carried so far (traffic statistic). */
    uint64_t waveletHops() const { return waveletHops_; }

  private:
    /** Reserve `n` wavelet slots on a link; returns the actual start. */
    Cycles reserveLink(int x, int y, Direction dir, Cycles from, Cycles n);

    /** Flat index of the outgoing link at (x, y) towards dir. */
    size_t linkIndex(int x, int y, Direction dir) const;

    Simulator &sim_;
    /** Dense per-link next-free-cycle table, sized width*height*4 at
     *  construction (the grid is fixed for the simulator's lifetime). */
    std::vector<Cycles> linkFree_;
    uint64_t waveletHops_ = 0;
};

} // namespace wsc::wse

#endif // WSC_WSE_FABRIC_H
