/**
 * @file
 * Data Structure Descriptors: 1-D affine views over PE-local buffers with
 * hardware-supported iteration, plus the f32 DSD compute builtins
 * (@fadds, @fsubs, @fmuls, @fmovs, @fmacs). Execution applies the
 * element-wise semantics and charges the DSD timing model through the
 * TaskContext.
 */

#ifndef WSC_WSE_DSD_H
#define WSC_WSE_DSD_H

#include <cstdint>
#include <vector>

#include "support/error.h"
#include "wse/pe.h"

namespace wsc::wse {

/** A 1-D affine view over an f32 buffer. */
struct Dsd
{
    std::vector<float> *buf = nullptr;
    int64_t offset = 0;
    int64_t length = 0;
    int64_t stride = 1;
    /**
     * Broadcast wrap (CSL virtual-dimension trick): when non-zero,
     * iteration index i addresses element (i mod wrap). Used for the
     * one-shot reduction of a whole multi-section receive buffer into a
     * single accumulator slice.
     */
    int64_t wrap = 0;

    /** Element access with bounds checking. */
    float &
    at(int64_t i) const
    {
        if (wrap > 0)
            i %= wrap;
        int64_t idx = offset + i * stride;
        // The failure path is outlined so this stays inlinable in the
        // per-element builtin loops.
        if (buf == nullptr || idx < 0 ||
            idx >= static_cast<int64_t>(buf->size())) [[unlikely]]
            accessError(idx);
        return (*buf)[idx];
    }

    /** Panics with a bounds diagnostic (cold path of at()). */
    [[noreturn]] void accessError(int64_t idx) const;

    /** A copy shifted by `delta` elements. */
    Dsd
    shifted(int64_t delta) const
    {
        Dsd d = *this;
        d.offset += delta;
        return d;
    }

    /** A copy with a different length. */
    Dsd
    withLength(int64_t newLength) const
    {
        Dsd d = *this;
        d.length = newLength;
        return d;
    }
};

/** A builtin operand: either a DSD or an f32 scalar (broadcast). */
struct DsdOperand
{
    Dsd dsd;
    float scalar = 0.0f;
    bool isScalar = false;

    static DsdOperand
    fromDsd(const Dsd &d)
    {
        DsdOperand o;
        o.dsd = d;
        return o;
    }

    static DsdOperand
    fromScalar(float s)
    {
        DsdOperand o;
        o.scalar = s;
        o.isScalar = true;
        return o;
    }

    float read(int64_t i) const { return isScalar ? scalar : dsd.at(i); }
};

/// @name DSD compute builtins (dest first, as in CSL)
/// @{
/** dest[i] = a[i] + b[i] */
void fadds(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
           const DsdOperand &b);
/** dest[i] = a[i] - b[i] */
void fsubs(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
           const DsdOperand &b);
/** dest[i] = a[i] * b[i] */
void fmuls(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
           const DsdOperand &b);
/** dest[i] = src[i] */
void fmovs(TaskContext &ctx, const Dsd &dest, const DsdOperand &src);
/** dest[i] = a[i] + b[i] * scalar (fused multiply-accumulate) */
void fmacs(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
           const DsdOperand &b, float scalar);
/// @}

} // namespace wsc::wse

#endif // WSC_WSE_DSD_H
