/**
 * @file
 * Event-driven simulator for a (sub-)grid of WSE processing elements,
 * shardable across threads.
 *
 * The PE grid is partitioned into rows x cols rectangular shard tiles
 * (SimOptions::shardGrid, auto-derived from SimOptions::threads when
 * unset; a single shard runs the classic sequential loop). Each shard
 * owns its own binary min-heap event queue, callback slot pool, payload
 * ring and statistics, so the hot schedule/dispatch paths are entirely
 * shard-local and lock-free.
 *
 * Parallel execution uses conservative lock-step windows: every event
 * that crosses a tile boundary (a fabric stream segment handed to the
 * E/W/N/S neighbour tile) carries at least the fabric hop latency, so
 * all shards can safely execute the window [globalMin, globalMin +
 * hopCycles) in parallel. Cross-shard events travel through per-pair
 * SPSC outboxes that are drained into the target heaps at the window
 * barrier (the barrier itself provides the memory synchronisation, so
 * the mailboxes are plain vectors). With SimOptions::adaptiveWindow the
 * barrier completion widens the window beyond one hop: each shard keeps
 * a min-heap of bounds `at + boundaryDistance(owner) * hopCycles` over
 * its pending events, and the next window ends at the smallest bound —
 * events deep inside a tile cannot influence another shard for at least
 * that many cycles, so idle boundaries stop throttling the wafer (safety
 * argument in docs/architecture.md §4).
 *
 * Work stealing (SimOptions::workStealing) decouples shard count from
 * worker count: within a window, every shard whose queue intersects the
 * window becomes a claimable unit of work. Workers drain their own
 * affinity queue then steal whole shard-windows from other workers via
 * an atomic claim flag. Because the window bound already guarantees no
 * cross-shard arrival lands inside the current window, shard-windows
 * are mutually independent and WHICH thread executes one cannot change
 * any result — per-shard clocks, sequence counters and heaps travel
 * with the shard, not the worker.
 *
 * Determinism: events are ordered by (cycle, owner PE, creator PE,
 * per-creator sequence). The owner is the PE whose state the event
 * mutates (all mutable simulator state is owner-partitioned), the
 * creator is the PE whose event scheduled it, and the sequence numbers
 * each creator's creations. This key is independent of thread
 * interleaving, of the tiling and of window policy, so a threads=N run
 * under any shardGrid is cycle-identical and SimStats-identical to the
 * threads=1 run — pinned by the `sharded` test suite and the golden
 * cycle counts.
 *
 * The schedule/run path is allocation-free for inline-sized callbacks:
 * an event is a POD key in a pre-sized heap vector, and its callback
 * lives in a small-buffer EventCallback slot recycled through a free
 * list.
 *
 * Timing model (documented in DESIGN.md §4): each PE has a single work
 * timeline on which task execution, DSD compute and ramp data transfers
 * serialize — justified by the shared memory ports (128-bit read + 64-bit
 * write per cycle) that all of these contend for. Transfers between PEs
 * proceed concurrently across the fabric.
 */

#ifndef WSC_WSE_SIMULATOR_H
#define WSC_WSE_SIMULATOR_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "wse/arch_params.h"
#include "wse/fabric.h"
#include "wse/fault.h"
#include "wse/payload.h"
#include "wse/pe.h"

namespace wsc::wse {

/** Aggregate statistics across a simulation. */
struct SimStats
{
    uint64_t eventsProcessed = 0;
    uint64_t waveletsSent = 0;
    uint64_t taskActivations = 0;
    uint64_t dsdOps = 0;
    uint64_t flops = 0;
    /** Local-memory traffic of DSD ops (reads + writes). */
    uint64_t memBytes = 0;

    bool operator==(const SimStats &) const = default;
};

/**
 * Shard tiling of the PE grid: rows horizontal bands x cols vertical
 * bands of balanced contiguous extents. {0, 0} (the default) derives a
 * near-square tiling from SimOptions::threads. rows=1 reproduces the
 * classic 1-D column strips.
 */
struct ShardGrid
{
    int rows = 0;
    int cols = 0;
};

/** Execution options of one Simulator instance. */
struct SimOptions
{
    /**
     * Worker threads. 1 with an unset shardGrid (the default) runs the
     * exact sequential path; higher values run lock-step conservative
     * windows with identical (cycle- and stats-identical) results.
     * Clamped to the shard count — shards are the unit of parallelism.
     */
    int threads = 1;

    /** Faults to inject (wse/fault.h). Empty injects nothing and keeps
     *  the run bit-identical to a simulator without this member. */
    FaultPlan faults;

    /**
     * StarComm watchdog: cycles an exchange may sit incomplete before
     * its timeout fires. 0 (the default) disables the watchdog — a
     * neighbour halted mid-exchange then deadlocks the dependent PEs
     * (diagnosed, not hung). Non-zero arms bounded retry/backoff ending
     * in a degraded (zero-filled) exchange.
     */
    Cycles exchangeTimeoutCycles = 0;

    /** Deadline extensions (each doubling the wait) before an
     *  incomplete exchange degrades. */
    int exchangeMaxRetries = 2;

    /**
     * 2-D shard tiling (rows x cols tiles). Unset {0, 0} auto-derives
     * the most-square tiling with `threads` tiles that fits the grid;
     * explicit values are clamped to the grid extents. Any tiling
     * produces bit-identical results — this knob only moves the
     * parallelism/boundary-traffic trade-off.
     */
    ShardGrid shardGrid;

    /**
     * Let the window barrier pick the largest provably-safe window from
     * the pending events' distances to their tile boundaries instead of
     * the fixed one-hop minimum. Purely a scheduling policy: results
     * stay bit-identical, barrier count drops sharply when activity sits
     * away from the active boundaries.
     */
    bool adaptiveWindow = true;

    /**
     * Let idle workers steal whole ready shard-windows from busy
     * workers inside a window (claim-flag protected, deterministic
     * results at any thread count). Only meaningful when the shard
     * count exceeds the worker count or load is skewed.
     */
    bool workStealing = true;

    /**
     * Adaptive-window horizon: events farther than this many hops from
     * every tile boundary are not distance-tracked; the window is then
     * bounded by `globalMin + maxWindowHops * hopCycles`. Larger values
     * track more events for wider windows; must be >= 1.
     */
    int maxWindowHops = 256;
};

/**
 * Scheduler-level counters of the most recent run (merged across
 * shards by Simulator::telemetry()). These describe HOW the run was
 * executed — windows, steals, allocation behaviour — never WHAT it
 * computed; every field may vary with threads/tiling while the
 * simulation results stay bit-identical.
 */
struct ShardingTelemetry
{
    /** Barrier windows executed (0 for the sequential path). */
    uint64_t windows = 0;
    /** Sum of window lengths in cycles (windows * hopCycles when
     *  adaptiveWindow is off). */
    Cycles windowCycles = 0;
    /** Shard-windows executed (claims, including by the home worker). */
    uint64_t shardWindowsRun = 0;
    /** Shard-windows claimed by a non-home worker. */
    uint64_t steals = 0;
    /** Cross-shard outbox lane growths (capacity reallocations). Steady
     *  state is 0: lanes are cleared, never shrunk, between windows. */
    uint64_t outboxReallocs = 0;
};

/**
 * Everything a caller can observe about one finished run; returned by
 * Simulator::runWithReport() and kept in Simulator::report().
 */
struct SimReport
{
    SimOutcome outcome = SimOutcome::Completed;
    Cycles finalCycle = 0;
    SimStats stats;
    FaultStats faults;
    /** Dense PE ids halted within the run (sorted). */
    std::vector<uint32_t> haltedPes;
    /** Dense PE ids that finished with a degraded (zero-filled)
     *  exchange (sorted, deduplicated). */
    std::vector<uint32_t> degradedPes;
    /** Populated whenever outcome != Completed. */
    SimDiagnosis diagnosis;

    /** True when every non-faulted PE ran to completion. */
    bool
    ok() const
    {
        return outcome == SimOutcome::Completed ||
               outcome == SimOutcome::Degraded;
    }
};

/**
 * A move-only callable with inline small-buffer storage. Callables up to
 * kInlineSize bytes are stored in place (no heap allocation on the
 * schedule path); larger ones fall back to a single heap allocation.
 * Dispatch goes through a static per-type ops table (tagged dispatch
 * without per-instance virtual objects).
 */
class EventCallback
{
  public:
    /** Sized to hold every simulator-internal callback inline (the
     *  largest is a fabric stream segment / delivery record). */
    static constexpr size_t kInlineSize = 64;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT: implicit by design (schedule sites)
    {
        using Fn = std::decay_t<F>;
        // The nothrow-move requirement keeps slot-pool relocation (a
        // noexcept path) safe; throwing-move callables go to the heap.
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (storage_) Fn(std::forward<F>(fn));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            new (storage_) Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(storage_);
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    struct InlineOps
    {
        static void
        invoke(void *p)
        {
            (*static_cast<Fn *>(p))();
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        }
        static void
        destroy(void *p)
        {
            static_cast<Fn *>(p)->~Fn();
        }
        static constexpr Ops ops = {invoke, relocate, destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static Fn *&
        ptr(void *p)
        {
            return *static_cast<Fn **>(p);
        }
        static void
        invoke(void *p)
        {
            (*ptr(p))();
        }
        static void
        relocate(void *dst, void *src)
        {
            new (dst) Fn *(ptr(src));
        }
        static void
        destroy(void *p)
        {
            delete ptr(p);
        }
        static constexpr Ops ops = {invoke, relocate, destroy};
    };

    void
    moveFrom(EventCallback &other)
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops *ops_ = nullptr;
};

class Simulator;

/**
 * One shard tile: a private event queue plus the per-shard resources
 * its PEs touch on the hot path (stats, payload ring, fabric hop
 * counter). All members are accessed only by the worker currently
 * executing this shard's window (exclusive via the claim flag; a
 * different worker may execute each window, with the window barrier
 * ordering the hand-off) or by the host thread while no run is active.
 * Cross-shard event creation goes through the outboxes, drained at
 * window barriers.
 */
class Shard
{
  public:
    Shard(Simulator &sim, int index);
    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    /** Local simulation time (== global time at window barriers). */
    Cycles now() const { return now_; }

    /** Shard-local statistics (merged by Simulator::stats()). */
    SimStats &stats() { return stats_; }

    /** Shard-local payload ring (see wse/payload.h). */
    PayloadPool &payloadPool() { return payloadPool_; }

    /** Shard-local fault counters (merged by Simulator reports).
     *  Mutated only by events owned by this shard's PEs. */
    FaultStats &faultStats() { return faultStats_; }

    /**
     * Schedule an event owned by `owner` (a PE of this shard, or the
     * host id) at absolute cycle `at` (>= now). The creator recorded in
     * the ordering key is the currently executing event's owner.
     */
    void push(uint32_t owner, Cycles at, EventCallback fn);

    int index() const { return index_; }

  private:
    friend class Simulator;
    friend class Fabric;

    /**
     * Heap entry: POD, so sift operations move 32 bytes, never the
     * callback. Ordered by (at, owner, creator, seq): owner and creator
     * are packed into one word (owner in the high half) so the
     * deterministic tie-break is two integer compares. `seq` is the
     * creating shard's monotone counter — only compared between events
     * of the same creator, whose creations are totally ordered within
     * one shard, so the key is independent of the shard count. `slot`
     * indexes the callback slot pool.
     */
    struct EventKey
    {
        Cycles at;
        uint64_t ownerCreator;
        uint64_t seq;
        uint32_t slot;
    };

    /** A cross-shard event in flight (drained at window barriers). */
    struct MailEntry
    {
        Cycles at;
        uint64_t ownerCreator;
        uint64_t seq;
        EventCallback cb;
    };

    static uint64_t
    packKey(uint32_t owner, uint32_t creator)
    {
        return (static_cast<uint64_t>(owner) << 32) | creator;
    }

    static bool
    before(const EventKey &a, const EventKey &b)
    {
        if (a.at != b.at)
            return a.at < b.at;
        if (a.ownerCreator != b.ownerCreator)
            return a.ownerCreator < b.ownerCreator;
        return a.seq < b.seq;
    }

    /**
     * Adaptive-window bookkeeping: one entry per distance-tracked
     * pending event. `bound = at + boundaryDist(owner) * hopCycles` is
     * the earliest cycle at which the event could influence another
     * shard; the min over all live bounds is this shard's window cap.
     * Entries of executed events are purged lazily from the heap top
     * (a stale entry can only shrink a window, never widen it).
     */
    struct Constraint
    {
        Cycles bound;
        Cycles eventAt;
    };

    void pushKeyed(uint64_t ownerCreator, uint64_t seq, Cycles at,
                   EventCallback fn);
    void siftUp(size_t i);
    void siftDown(size_t i);
    /** Drop constraint-heap tops whose events executed (at < before). */
    void purgeConstraints(Cycles before);
    /** Smallest live constraint bound, or kNoBound when untracked. */
    Cycles constraintBound() const;
    static constexpr Cycles kNoBound = ~Cycles{0};
    /** Execute events with at < end; returns early (leaving events
     *  queued) once the budget is spent — the caller diagnoses. */
    void runWindow(Cycles end, uint64_t maxEvents);
    /** Pop and run the next event (sequential path). */
    void step();

    Simulator *sim_;
    int index_;
    /** Declared before the queues: queued callbacks may hold
     *  PayloadRefs, so the pool must outlive them on destruction
     *  (cross-shard refs are drained by ~Simulator first). */
    PayloadPool payloadPool_;
    SimStats stats_;
    Cycles now_ = 0;
    /** Owner of the event currently executing (host id when idle);
     *  recorded as the creator of events it schedules. */
    uint32_t currentOwner_;
    /** Binary min-heap on the deterministic key. */
    std::vector<EventKey> heap_;
    /** Callback slot pool; slots are recycled through freeSlots_. */
    std::vector<EventCallback> slots_;
    std::vector<uint32_t> freeSlots_;
    /** Monotone creation counter (per-creator sequence source). */
    uint64_t nextSeq_ = 0;
    /** Outgoing cross-shard events, one lane per destination shard. */
    std::vector<std::vector<MailEntry>> outbox_;
    /** Events executed in the current run (budget accounting). */
    uint64_t processed_ = 0;
    /** True in adaptive parallel runs: pushKeyed records constraints. */
    bool trackConstraints_ = false;
    /** Min-heap (by bound) of adaptive-window constraints. */
    std::vector<Constraint> constraints_;
    /** Outbox lane capacity growths (ShardingTelemetry). */
    uint64_t outboxReallocs_ = 0;
    /** Wavelet-hops injected by this shard's links (fabric statistic). */
    uint64_t fabricHops_ = 0;
    /** Fault counters of this shard's PEs (wse/fault.h). */
    FaultStats faultStats_;
    /** PEs of this shard that degraded an exchange (unsorted; merged
     *  and sorted into SimReport::degradedPes). */
    std::vector<uint32_t> degradedPes_;
};

/** Owns the PE grid, fabric, and the shard set. */
class Simulator
{
  public:
    /**
     * Build a simulator over a width x height PE sub-grid using the given
     * architecture parameters. The sub-grid must fit the fabric.
     */
    Simulator(const ArchParams &params, int width, int height,
              SimOptions options = {});
    ~Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    const ArchParams &params() const { return params_; }
    int width() const { return width_; }
    int height() const { return height_; }
    /** Worker threads executing shard-windows (<= shardCount()). */
    int threads() const { return numWorkers_; }
    /** Shard tiles the grid is partitioned into (rows * cols). */
    int shardCount() const { return static_cast<int>(shards_.size()); }
    /** Horizontal tile bands (shardGrid rows after clamping). */
    int shardRows() const { return shardRows_; }
    /** Vertical tile bands (shardGrid cols after clamping). */
    int shardCols() const { return shardCols_; }
    /** The options this simulator was built with (threads clamped,
     *  shardGrid resolved to the actual tiling). */
    const SimOptions &options() const { return options_; }

    /** Scheduler counters of the most recent run (merged on call).
     *  Execution-shape only — never part of the determinism contract. */
    ShardingTelemetry telemetry() const;

    Pe &pe(int x, int y);
    Fabric &fabric() { return *fabric_; }

    /** Aggregate statistics, merged across shards on each call
     *  (read-only: subsystems accumulate into their shard's stats). */
    const SimStats &stats();

    /** Total wavelet-hops carried by the fabric (summed over shards). */
    uint64_t fabricHops() const;

    /**
     * Current simulation time: the executing shard's clock from inside
     * an event callback, the final global clock otherwise.
     */
    Cycles now() const;

    /**
     * Schedule `fn` at absolute cycle `at` (>= now). Accepts any
     * callable; inline-sized ones are stored without heap allocation.
     * Host-side calls land on shard 0; calls from inside an event run
     * on the scheduling event's shard (FIFO per creator at equal
     * cycles).
     */
    void schedule(Cycles at, EventCallback fn);

    /**
     * Run until the event queue drains. Returns the final cycle. Throws
     * FatalError carrying the full SimDiagnosis dump when the event
     * budget is exceeded; fault-induced deadlock and degradation do NOT
     * throw — inspect report() (or use runWithReport()) for those.
     */
    Cycles run(uint64_t maxEvents = UINT64_MAX);

    /**
     * Run until the event queue drains and classify how it ended:
     * Completed, Degraded (faulted PEs left partial results, everyone
     * else finished), Deadlock (a non-halted PE can never progress), or
     * EventBudgetExceeded. Never throws on any of those outcomes — the
     * returned report carries the diagnosis.
     */
    const SimReport &runWithReport(uint64_t maxEvents = UINT64_MAX);

    /** The report of the most recent run. */
    const SimReport &report() const { return report_; }

    /**
     * A quiescence probe reports obligations that survive an empty
     * event queue (an exchange still waiting for data, a program that
     * never returned control to the host). Probes run when the queues
     * drain; any obligation on a non-halted PE classifies the run as
     * Deadlock rather than Completed/Degraded. The probe owner must
     * outlive every subsequent run of this simulator.
     */
    using QuiescenceProbe =
        std::function<void(std::vector<BlockedPeInfo> &)>;
    void addQuiescenceProbe(QuiescenceProbe probe);

    /** Record a PE that finished with degraded results. Must be called
     *  from an event owned by that PE (its shard's context). */
    void noteDegradedPe(uint32_t peId);

    /** True when no events remain (queues and mailboxes). */
    bool idle() const;

    /// @name Internal scheduling surface (Pe / Fabric)
    /// @{
    /** Dense PE index of (x, y). */
    uint32_t
    peIndex(int x, int y) const
    {
        return static_cast<uint32_t>(x) * static_cast<uint32_t>(height_) +
               static_cast<uint32_t>(y);
    }
    /** The host's creator/owner id (orders host events after PEs). */
    uint32_t hostId() const { return numPes_; }
    /** Shard owning a PE (or shard 0 for the host id). */
    Shard &shardOfPe(uint32_t peIdx);
    /**
     * Schedule an event owned by `owner` from the execution context of
     * `from` (nullptr for the host). Same-shard events push directly;
     * cross-shard events go through `from`'s outbox and join the target
     * heap at the next window barrier. Host-context events draw their
     * sequence from one shared counter, so their relative order is
     * thread-count independent.
     */
    void scheduleOnPe(uint32_t owner, Cycles at, EventCallback fn,
                      Shard *from);
    /** The shard executing on this thread, or nullptr on the host.
     *  THE value to pass as `from`: using a PE's home shard instead
     *  would draw host-event sequence numbers from per-shard counters
     *  and break the determinism key. */
    Shard *currentShard() const;
    /// @}

  private:
    friend class Shard;

    /** Both return true when the run stopped on the event budget with
     *  events still queued (classified by runWithReport). */
    bool runSequential(uint64_t maxEvents);
    bool runParallel(uint64_t maxEvents);
    Cycles finishRun();

    /** Resolve options_.shardGrid (auto-derivation, clamping) and the
     *  worker count; called once from the constructor. */
    void resolveSharding();
    /** Precompute per-owner adaptive-window latencies (boundary
     *  distance x lookahead; 0 = untracked). */
    void buildConstraintLatencies();
    /** Bound = at + constraintLat; 0 means the owner is untracked. */
    Cycles
    constraintLat(uint32_t owner) const
    {
        return peConstraintLat_[owner];
    }
    /** Run every shard-window assigned to (or stolen by) worker `w`. */
    void runAssignedShards(int w, Cycles windowEnd, uint64_t maxEvents);
    /** Claim shard s for this window; true for exactly one caller. */
    bool
    claimShard(uint32_t s)
    {
        return !claimed_[s].exchange(true, std::memory_order_acq_rel);
    }

    /** Push the fault plan's PE thresholds / fabric tables out. */
    void applyFaultPlan();
    /** Run the quiescence probes and mark halted PEs. */
    void collectBlockedPes(std::vector<BlockedPeInfo> &out);
    /** Build the structured post-mortem of the current state. */
    SimDiagnosis diagnose(SimOutcome outcome, uint64_t budget,
                          std::vector<BlockedPeInfo> blocked);

    ArchParams params_;
    SimOptions options_;
    int width_;
    int height_;
    uint32_t numPes_;
    /** Conservative window length: the minimum cross-shard latency. */
    Cycles lookahead_;
    /** Global clock outside of run() (max shard clock after a run). */
    Cycles finalNow_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Resolved tiling (options_.shardGrid after clamping). */
    int shardRows_ = 1;
    int shardCols_ = 1;
    /** Worker threads (options_.threads clamped to the shard count). */
    int numWorkers_ = 1;
    /** Tile band per PE column / row; shard = row band * cols + col
     *  band. rows=1 degenerates to the classic column strips. */
    std::vector<int> tileOfCol_;
    std::vector<int> tileOfRow_;
    /**
     * Adaptive-window latency per owner id (numPes_ + 1 entries; the
     * host is index numPes_): boundary distance x lookahead, 0 when the
     * owner sits farther than maxWindowHops from every tile boundary
     * (untracked; covered by the maxWindowLat_ fallback cap).
     */
    std::vector<Cycles> peConstraintLat_;
    /** Fallback window cap: maxWindowHops x lookahead. */
    Cycles maxWindowLat_ = 0;
    /** Per-shard window claim flags (index == shard index). */
    std::unique_ptr<std::atomic<bool>[]> claimed_;
    /** Shard indices each worker should run this window (rebuilt in the
     *  barrier completion; read-only while a window executes). */
    std::vector<std::vector<uint32_t>> workerQueues_;
    /** Barrier-window counters of the current run (completion-step
     *  writes, barrier-ordered). */
    uint64_t windowCount_ = 0;
    Cycles windowCycleSum_ = 0;
    /** Claim counters (workers increment concurrently). */
    std::atomic<uint64_t> shardWindowsRun_{0};
    std::atomic<uint64_t> stealCount_{0};
    std::vector<std::unique_ptr<Pe>> pes_;
    std::unique_ptr<Fabric> fabric_;
    /** Merged-stats cache refreshed by stats(). */
    SimStats mergedStats_;
    /** Report of the most recent run (rebuilt by runWithReport). */
    SimReport report_;
    /** Registered quiescence probes (run at queue drain). */
    std::vector<QuiescenceProbe> probes_;
};

} // namespace wsc::wse

#endif // WSC_WSE_SIMULATOR_H
