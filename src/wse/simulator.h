/**
 * @file
 * Event-driven simulator for a (sub-)grid of WSE processing elements.
 *
 * The simulator advances a global cycle clock through a binary min-heap
 * of events. PEs model single-threaded cores running actor-style tasks;
 * the fabric models per-link wavelet streams between neighbouring
 * routers.
 *
 * The schedule/run path is allocation-free for inline-sized callbacks:
 * an event is a POD key (cycle, sequence, slot) in a pre-sized heap
 * vector, and its callback lives in a small-buffer EventCallback slot
 * that is recycled through a free list. Every callback the simulator
 * subsystems schedule (PE dispatch, fabric deliveries) fits the inline
 * buffer; oversized user callables take one heap allocation.
 *
 * Timing model (documented in DESIGN.md §4): each PE has a single work
 * timeline on which task execution, DSD compute and ramp data transfers
 * serialize — justified by the shared memory ports (128-bit read + 64-bit
 * write per cycle) that all of these contend for. Transfers between PEs
 * proceed concurrently across the fabric.
 */

#ifndef WSC_WSE_SIMULATOR_H
#define WSC_WSE_SIMULATOR_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "wse/arch_params.h"
#include "wse/fabric.h"
#include "wse/pe.h"

namespace wsc::wse {

/** Aggregate statistics across a simulation. */
struct SimStats
{
    uint64_t eventsProcessed = 0;
    uint64_t waveletsSent = 0;
    uint64_t taskActivations = 0;
    uint64_t dsdOps = 0;
    uint64_t flops = 0;
    /** Local-memory traffic of DSD ops (reads + writes). */
    uint64_t memBytes = 0;
};

/**
 * A move-only callable with inline small-buffer storage. Callables up to
 * kInlineSize bytes are stored in place (no heap allocation on the
 * schedule path); larger ones fall back to a single heap allocation.
 * Dispatch goes through a static per-type ops table (tagged dispatch
 * without per-instance virtual objects).
 */
class EventCallback
{
  public:
    /** Sized to hold every simulator-internal callback inline (the
     *  largest is a fabric delivery: two shared_ptrs + a record). */
    static constexpr size_t kInlineSize = 64;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F &&fn) // NOLINT: implicit by design (schedule sites)
    {
        using Fn = std::decay_t<F>;
        // The nothrow-move requirement keeps slot-pool relocation (a
        // noexcept path) safe; throwing-move callables go to the heap.
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            new (storage_) Fn(std::forward<F>(fn));
            ops_ = &InlineOps<Fn>::ops;
        } else {
            new (storage_) Fn *(new Fn(std::forward<F>(fn)));
            ops_ = &HeapOps<Fn>::ops;
        }
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(storage_);
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    struct InlineOps
    {
        static void
        invoke(void *p)
        {
            (*static_cast<Fn *>(p))();
        }
        static void
        relocate(void *dst, void *src)
        {
            Fn *s = static_cast<Fn *>(src);
            new (dst) Fn(std::move(*s));
            s->~Fn();
        }
        static void
        destroy(void *p)
        {
            static_cast<Fn *>(p)->~Fn();
        }
        static constexpr Ops ops = {invoke, relocate, destroy};
    };

    template <typename Fn>
    struct HeapOps
    {
        static Fn *&
        ptr(void *p)
        {
            return *static_cast<Fn **>(p);
        }
        static void
        invoke(void *p)
        {
            (*ptr(p))();
        }
        static void
        relocate(void *dst, void *src)
        {
            new (dst) Fn *(ptr(src));
        }
        static void
        destroy(void *p)
        {
            delete ptr(p);
        }
        static constexpr Ops ops = {invoke, relocate, destroy};
    };

    void
    moveFrom(EventCallback &other)
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops *ops_ = nullptr;
};

/** Owns the PE grid, fabric and event queue. */
class Simulator
{
  public:
    /**
     * Build a simulator over a width x height PE sub-grid using the given
     * architecture parameters. The sub-grid must fit the fabric.
     */
    Simulator(const ArchParams &params, int width, int height);
    ~Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    const ArchParams &params() const { return params_; }
    int width() const { return width_; }
    int height() const { return height_; }

    Pe &pe(int x, int y);
    Fabric &fabric() { return *fabric_; }
    SimStats &stats() { return stats_; }

    /** Current simulation time. */
    Cycles now() const { return now_; }

    /**
     * Schedule `fn` at absolute cycle `at` (>= now). Accepts any
     * callable; inline-sized ones are stored without heap allocation.
     */
    void schedule(Cycles at, EventCallback fn);

    /** Run until the event queue drains. Returns the final cycle. */
    Cycles run(uint64_t maxEvents = UINT64_MAX);

    /** True when no events remain. */
    bool idle() const { return heap_.empty(); }

  private:
    /** Heap entry: POD, so sift operations move 24 bytes, never the
     *  callback. `slot` indexes the callback slot pool. */
    struct EventKey
    {
        Cycles at;
        uint64_t seq;
        uint32_t slot;
    };

    static bool
    before(const EventKey &a, const EventKey &b)
    {
        return a.at != b.at ? a.at < b.at : a.seq < b.seq;
    }

    void siftUp(size_t i);
    void siftDown(size_t i);

    ArchParams params_;
    int width_;
    int height_;
    Cycles now_ = 0;
    uint64_t nextSeq_ = 0;
    /** Binary min-heap on (at, seq); pre-sized in the constructor. */
    std::vector<EventKey> heap_;
    /** Callback slot pool; slots are recycled through freeSlots_. */
    std::vector<EventCallback> slots_;
    std::vector<uint32_t> freeSlots_;
    std::vector<std::unique_ptr<Pe>> pes_;
    std::unique_ptr<Fabric> fabric_;
    SimStats stats_;
};

} // namespace wsc::wse

#endif // WSC_WSE_SIMULATOR_H
