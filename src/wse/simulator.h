/**
 * @file
 * Event-driven simulator for a (sub-)grid of WSE processing elements.
 *
 * The simulator advances a global cycle clock through a priority queue of
 * events. PEs model single-threaded cores running actor-style tasks; the
 * fabric models per-link wavelet streams between neighbouring routers.
 *
 * Timing model (documented in DESIGN.md §4): each PE has a single work
 * timeline on which task execution, DSD compute and ramp data transfers
 * serialize — justified by the shared memory ports (128-bit read + 64-bit
 * write per cycle) that all of these contend for. Transfers between PEs
 * proceed concurrently across the fabric.
 */

#ifndef WSC_WSE_SIMULATOR_H
#define WSC_WSE_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "wse/arch_params.h"
#include "wse/fabric.h"
#include "wse/pe.h"

namespace wsc::wse {

/** Aggregate statistics across a simulation. */
struct SimStats
{
    uint64_t eventsProcessed = 0;
    uint64_t waveletsSent = 0;
    uint64_t taskActivations = 0;
    uint64_t dsdOps = 0;
    uint64_t flops = 0;
    /** Local-memory traffic of DSD ops (reads + writes). */
    uint64_t memBytes = 0;
};

/** Owns the PE grid, fabric and event queue. */
class Simulator
{
  public:
    /**
     * Build a simulator over a width x height PE sub-grid using the given
     * architecture parameters. The sub-grid must fit the fabric.
     */
    Simulator(const ArchParams &params, int width, int height);
    ~Simulator();
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    const ArchParams &params() const { return params_; }
    int width() const { return width_; }
    int height() const { return height_; }

    Pe &pe(int x, int y);
    Fabric &fabric() { return *fabric_; }
    SimStats &stats() { return stats_; }

    /** Current simulation time. */
    Cycles now() const { return now_; }

    /** Schedule `fn` at absolute cycle `at` (>= now). */
    void schedule(Cycles at, std::function<void()> fn);

    /** Run until the event queue drains. Returns the final cycle. */
    Cycles run(uint64_t maxEvents = UINT64_MAX);

    /** True when no events remain. */
    bool idle() const { return queue_.empty(); }

  private:
    struct Event
    {
        Cycles at;
        uint64_t seq;
        std::function<void()> fn;
    };
    struct EventOrder
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };

    ArchParams params_;
    int width_;
    int height_;
    Cycles now_ = 0;
    uint64_t nextSeq_ = 0;
    std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
    std::vector<std::unique_ptr<Pe>> pes_;
    std::unique_ptr<Fabric> fabric_;
    SimStats stats_;
};

} // namespace wsc::wse

#endif // WSC_WSE_SIMULATOR_H
