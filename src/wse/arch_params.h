/**
 * @file
 * Architecture parameter sets for the simulated Wafer-Scale Engine
 * generations. The WSE2/WSE3 differences the paper identifies — switching
 * logic that forces WSE2 PEs to transmit to themselves, plus a general
 * per-generation speed bump — are expressed here and consumed by the
 * fabric/PE models.
 *
 * Absolute values are calibrated so that derived machine-level numbers
 * (peak FP32 FLOP/s, aggregate memory and fabric bandwidth) land close to
 * the rooflines the paper plots for the WSE3: ~1.5 PFLOP/s peak,
 * ~18 PB/s memory bandwidth, ~3.3 PB/s fabric injection bandwidth.
 */

#ifndef WSC_WSE_ARCH_PARAMS_H
#define WSC_WSE_ARCH_PARAMS_H

#include <cstdint>
#include <string>

namespace wsc::wse {

/** Simulation time unit: clock cycles of the PE/fabric clock. */
using Cycles = uint64_t;

/** Parameters describing one WSE generation. */
struct ArchParams
{
    std::string name;

    /// @name Fabric geometry
    /// @{
    /** PE grid usable by kernels (after memcpy infrastructure columns). */
    int64_t fabricWidth = 0;
    int64_t fabricHeight = 0;
    /// @}

    /// @name Clocks and ports
    /// @{
    double clockGHz = 0.85;
    /** Per-PE local SRAM. */
    int64_t peMemoryBytes = 48 * 1024;
    /** 128-bit read port. */
    int readBytesPerCycle = 16;
    /** 64-bit write port. */
    int writeBytesPerCycle = 8;
    /// @}

    /// @name DSD engine
    /// @{
    /** Fixed cycles to configure + launch one DSD builtin. */
    Cycles dsdSetupCycles = 6;
    /** f32 elements processed per cycle by DSD builtins (1 FMA/cycle). */
    double f32ElemsPerCycle = 1.0;
    /// @}

    /// @name Fabric
    /// @{
    /** Wavelet payload (one f32). */
    int waveletBytes = 4;
    /** Router-to-router latency per hop. */
    Cycles hopCycles = 1;
    /** Wavelets per cycle per link per direction. */
    int linkWaveletsPerCycle = 1;
    /// @}

    /// @name Task model
    /// @{
    /** Dispatch overhead charged per task activation. */
    Cycles taskActivateCycles = 15;
    /// @}

    /// @name Switching (the §6 WSE2-vs-WSE3 mechanism)
    /// @{
    /**
     * WSE2 switch configurations require each PE to transmit data to
     * itself as well as to its neighbours (Jacquelin et al.); the
     * self-copy occupies the sender's ramp like a real reception.
     */
    bool switchRequiresSelfTransmit = false;
    /** Cycles to advance switch positions, per direction per chunk. */
    Cycles switchReconfigCycles = 8;
    /// @}

    /** Peak FP32 FLOP/s of the whole fabric (2 FLOP/cycle/PE via FMA). */
    double peakFlops() const;
    /** Aggregate local-memory bandwidth in bytes/s. */
    double memoryBandwidth() const;
    /** Aggregate fabric injection bandwidth in bytes/s. */
    double fabricBandwidth() const;
    /** Number of usable PEs. */
    int64_t numPes() const { return fabricWidth * fabricHeight; }

    /** The Cerebras CS-2 (WSE2) configuration. */
    static ArchParams wse2();
    /** The Cerebras CS-3 (WSE3) configuration. */
    static ArchParams wse3();
};

} // namespace wsc::wse

#endif // WSC_WSE_ARCH_PARAMS_H
