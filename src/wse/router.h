/**
 * @file
 * Per-PE router configuration: color-indexed routes with receive/transmit
 * direction sets and advanceable switch positions. The star-communication
 * library configures these at setup time; the fabric validates streams
 * against them, so misconfigured routes are caught in simulation just as
 * they would misbehave on hardware.
 */

#ifndef WSC_WSE_ROUTER_H
#define WSC_WSE_ROUTER_H

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "wse/fabric.h"

namespace wsc::wse {

/** Virtual channel id; the WSE exposes 24 user colors. */
using Color = uint8_t;
inline constexpr Color kNumColors = 24;

/** One switch position of a color's route. */
struct RoutePosition
{
    /** Directions wavelets are accepted from (or Ramp for injection). */
    std::set<Direction> rxFrom;
    /** Directions wavelets are forwarded to. */
    std::set<Direction> txTo;
    /** Whether wavelets are also delivered up the ramp to the core. */
    bool deliverToRamp = false;
};

/** A color's route: one or more switch positions advanced by control. */
struct RouteConfig
{
    std::vector<RoutePosition> positions;
    /** Current switch position index. */
    size_t current = 0;

    const RoutePosition &
    active() const
    {
        return positions.at(current);
    }
};

/** Router of a single PE. */
class Router
{
  public:
    /** Install the route for a color (replacing any previous config). */
    void configure(Color color, RouteConfig config);

    bool hasRoute(Color color) const;
    const RouteConfig &route(Color color) const;

    /** Advance a color's switch to the next position (wraps around). */
    void advanceSwitch(Color color);

    /** Reset all switch positions to 0. */
    void resetSwitches();

  private:
    std::map<Color, RouteConfig> routes_;
};

/**
 * Build the router configurations used by star-shaped stencil
 * communication: for data travelling in direction `dir` on `color`, a PE
 * at hop distance h (1 <= h < r) both delivers to its ramp and forwards,
 * while the PE at distance r only delivers. With `selfTransmit` (WSE2)
 * the injection position also routes a copy back up the sender's ramp.
 */
RouteConfig makeStarRoute(Direction dir, bool isSender, bool isTerminal,
                          bool selfTransmit);

} // namespace wsc::wse

#endif // WSC_WSE_ROUTER_H
