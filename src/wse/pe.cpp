#include "wse/pe.h"

#include <cmath>

#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::wse {

void
TaskContext::dsdOp(uint64_t elems, int flopsPerElem, int bytesPerElem)
{
    const ArchParams &p = sim_.params();
    consumed_ += p.dsdSetupCycles +
                 static_cast<Cycles>(
                     std::ceil(elems / p.f32ElemsPerCycle));
    sim_.stats().dsdOps++;
    sim_.stats().flops += elems * static_cast<uint64_t>(flopsPerElem);
    sim_.stats().memBytes += elems * static_cast<uint64_t>(bytesPerElem);
}

Pe::Pe(Simulator &sim, int x, int y) : sim_(sim), x_(x), y_(y) {}

std::vector<float> &
Pe::allocBuffer(const std::string &name, size_t elems)
{
    WSC_ASSERT(!buffers_.count(name),
               "buffer `" << name << "` already allocated on PE (" << x_
                          << ", " << y_ << ")");
    size_t bytes = elems * sizeof(float);
    if (bytesUsed_ + bytes >
        static_cast<size_t>(sim_.params().peMemoryBytes)) {
        fatal(strcat("PE (", x_, ", ", y_, ") out of memory allocating `",
                     name, "` (", elems, " elems): ", bytesUsed_, " + ",
                     bytes, " > ", sim_.params().peMemoryBytes, " bytes"));
    }
    bytesUsed_ += bytes;
    return buffers_.emplace(name, std::vector<float>(elems, 0.0f))
        .first->second;
}

std::vector<float> &
Pe::buffer(const std::string &name)
{
    auto it = buffers_.find(name);
    WSC_ASSERT(it != buffers_.end(), "no buffer `" << name << "` on PE ("
                                                   << x_ << ", " << y_
                                                   << ")");
    return it->second;
}

bool
Pe::hasBuffer(const std::string &name) const
{
    return buffers_.count(name) > 0;
}

void
Pe::freeBuffer(const std::string &name)
{
    auto it = buffers_.find(name);
    WSC_ASSERT(it != buffers_.end(), "freeing unknown buffer " << name);
    bytesUsed_ -= it->second.size() * sizeof(float);
    buffers_.erase(it);
}

void
Pe::registerTask(const std::string &name, TaskKind kind, TaskFn fn)
{
    WSC_ASSERT(!tasks_.count(name),
               "task `" << name << "` already registered");
    tasks_.emplace(name, TaskInfo{kind, std::move(fn)});
}

bool
Pe::hasTask(const std::string &name) const
{
    return tasks_.count(name) > 0;
}

void
Pe::activate(const std::string &name, Cycles readyAt)
{
    auto it = tasks_.find(name);
    WSC_ASSERT(it != tasks_.end(),
               "activating unknown task `" << name << "` on PE (" << x_
                                           << ", " << y_ << ")");
    pending_.emplace_back(&it->second, readyAt);
    if (!dispatchScheduled_) {
        dispatchScheduled_ = true;
        Cycles at = std::max(readyAt, sim_.now());
        sim_.schedule(at, [this] { dispatchPending(); });
    }
}

void
Pe::dispatchPending()
{
    dispatchScheduled_ = false;
    if (pending_.empty())
        return;
    auto [task, readyAt] = pending_.front();
    pending_.pop_front();

    const ArchParams &p = sim_.params();
    Cycles ready = std::max(readyAt, sim_.now());
    // The dispatch itself costs activation overhead on the work timeline.
    Cycles start =
        reserveWork(ready, p.taskActivateCycles) + p.taskActivateCycles;

    taskActivations_++;
    sim_.stats().taskActivations++;

    TaskContext ctx(sim_, *this, start);
    task->fn(ctx);
    // Charge the consumed core time onto the work timeline.
    if (ctx.consumed() > 0)
        reserveWork(start, ctx.consumed());
    busyCycles_ += p.taskActivateCycles + ctx.consumed();

    if (!pending_.empty()) {
        dispatchScheduled_ = true;
        Cycles next = std::max(pending_.front().second, workFree_);
        sim_.schedule(std::max(next, sim_.now()),
                      [this] { dispatchPending(); });
    }
}

Cycles
Pe::reserveWork(Cycles from, Cycles n)
{
    Cycles start = std::max(from, workFree_);
    workFree_ = start + n;
    return start;
}

void
Pe::resetStats()
{
    taskActivations_ = 0;
    busyCycles_ = 0;
}

} // namespace wsc::wse
