#include "wse/pe.h"

#include <cmath>

#include "support/error.h"
#include "wse/simulator.h"

namespace wsc::wse {

void
TaskContext::dsdOp(uint64_t elems, int flopsPerElem, int bytesPerElem)
{
    const ArchParams &p = sim_.params();
    consumed_ += p.dsdSetupCycles +
                 static_cast<Cycles>(
                     std::ceil(elems / p.f32ElemsPerCycle));
    SimStats &stats = pe_.shardStats();
    stats.dsdOps++;
    stats.flops += elems * static_cast<uint64_t>(flopsPerElem);
    stats.memBytes += elems * static_cast<uint64_t>(bytesPerElem);
}

Pe::Pe(Simulator &sim, Shard &shard, int x, int y, uint32_t id)
    : sim_(sim), shard_(shard), x_(x), y_(y), id_(id)
{
    scalars_.reserve(16);
}

Cycles
Pe::now() const
{
    return shard_.now();
}

SimStats &
Pe::shardStats()
{
    return shard_.stats();
}

PayloadPool &
Pe::payloadPool()
{
    return shard_.payloadPool();
}

void
Pe::scheduleDispatch(Cycles at)
{
    shard_.push(id_, at, [this] { dispatchPending(); });
}

void
Pe::checkBufferLive(BufferId id) const
{
    WSC_ASSERT(id.index >= 0 &&
                   static_cast<size_t>(id.index) < buffers_.size(),
               "invalid buffer handle " << id.index << " on PE (" << x_
                                        << ", " << y_ << ")");
    WSC_ASSERT(buffers_[static_cast<size_t>(id.index)].live,
               "use of freed buffer `"
                   << buffers_[static_cast<size_t>(id.index)].name
                   << "` on PE (" << x_ << ", " << y_ << ")");
}

void
Pe::checkScalar(ScalarId id) const
{
    WSC_ASSERT(id.index >= 0 &&
                   static_cast<size_t>(id.index) < scalars_.size(),
               "invalid scalar handle " << id.index << " on PE (" << x_
                                        << ", " << y_ << ")");
}

BufferId
Pe::allocBufferId(const std::string &name, size_t elems)
{
    size_t bytes = elems * sizeof(float);
    if (bytesUsed_ + bytes >
        static_cast<size_t>(sim_.params().peMemoryBytes)) {
        fatal(strcat("PE (", x_, ", ", y_, ") out of memory allocating `",
                     name, "` (", elems, " elems): ", bytesUsed_, " + ",
                     bytes, " > ", sim_.params().peMemoryBytes, " bytes"));
    }
    auto [it, inserted] = bufferIds_.try_emplace(
        name, static_cast<int32_t>(buffers_.size()));
    if (inserted) {
        buffers_.push_back(BufferSlot{name, {}, true});
    } else {
        // Re-allocation after freeBuffer() reuses the slot (and the
        // handle); double allocation of a live name is an error.
        BufferSlot &slot = buffers_[static_cast<size_t>(it->second)];
        WSC_ASSERT(!slot.live,
                   "buffer `" << name << "` already allocated on PE ("
                              << x_ << ", " << y_ << ")");
        slot.live = true;
    }
    bytesUsed_ += bytes;
    buffers_[static_cast<size_t>(it->second)].data.assign(elems, 0.0f);
    return BufferId{it->second};
}

std::vector<float> &
Pe::allocBuffer(const std::string &name, size_t elems)
{
    return buffer(allocBufferId(name, elems));
}

std::vector<float> &
Pe::buffer(const std::string &name)
{
    return buffer(bufferId(name));
}

BufferId
Pe::bufferId(const std::string &name) const
{
    BufferId id = findBuffer(name);
    WSC_ASSERT(id.valid(), "no buffer `" << name << "` on PE (" << x_
                                         << ", " << y_ << ")");
    return id;
}

BufferId
Pe::findBuffer(const std::string &name) const
{
    auto it = bufferIds_.find(name);
    if (it == bufferIds_.end() ||
        !buffers_[static_cast<size_t>(it->second)].live)
        return BufferId{};
    return BufferId{it->second};
}

const std::string &
Pe::bufferName(BufferId id) const
{
    WSC_ASSERT(id.index >= 0 &&
                   static_cast<size_t>(id.index) < buffers_.size(),
               "invalid buffer handle " << id.index);
    return buffers_[static_cast<size_t>(id.index)].name;
}

bool
Pe::hasBuffer(const std::string &name) const
{
    return findBuffer(name).valid();
}

void
Pe::freeBuffer(BufferId id)
{
    checkBufferLive(id);
    BufferSlot &slot = buffers_[static_cast<size_t>(id.index)];
    bytesUsed_ -= slot.data.size() * sizeof(float);
    slot.live = false;
    std::vector<float>().swap(slot.data); // Release the memory.
}

void
Pe::freeBuffer(const std::string &name)
{
    BufferId id = findBuffer(name);
    WSC_ASSERT(id.valid(), "freeing unknown buffer " << name);
    freeBuffer(id);
}

ScalarId
Pe::scalarId(const std::string &name)
{
    auto [it, inserted] = scalarIds_.try_emplace(
        name, static_cast<int32_t>(scalars_.size()));
    if (inserted)
        scalars_.push_back(0.0);
    return ScalarId{it->second};
}

ScalarId
Pe::findScalar(const std::string &name) const
{
    auto it = scalarIds_.find(name);
    return it == scalarIds_.end() ? ScalarId{} : ScalarId{it->second};
}

TaskId
Pe::registerTask(const std::string &name, TaskKind kind, TaskFn fn)
{
    auto [it, inserted] = taskIds_.try_emplace(
        name, static_cast<int32_t>(tasks_.size()));
    WSC_ASSERT(inserted, "task `" << name << "` already registered");
    tasks_.push_back(TaskInfo{name, kind, std::move(fn)});
    return TaskId{it->second};
}

TaskId
Pe::taskId(const std::string &name) const
{
    TaskId id = findTask(name);
    WSC_ASSERT(id.valid(), "activating unknown task `"
                               << name << "` on PE (" << x_ << ", " << y_
                               << ")");
    return id;
}

TaskId
Pe::findTask(const std::string &name) const
{
    auto it = taskIds_.find(name);
    return it == taskIds_.end() ? TaskId{} : TaskId{it->second};
}

bool
Pe::hasTask(const std::string &name) const
{
    return findTask(name).valid();
}

void
Pe::activate(TaskId task, Cycles readyAt)
{
    WSC_ASSERT(task.index >= 0 &&
                   static_cast<size_t>(task.index) < tasks_.size(),
               "activating an invalid task handle on PE (" << x_ << ", "
                                                           << y_ << ")");
    pending_.emplace_back(task.index, readyAt);
    // A halted CE accepts activations (they queue for the diagnosis)
    // but never dispatches them — and schedules nothing, so a fault-free
    // run's event order is untouched by the existence of this check.
    if (!dispatchScheduled_ && !halted()) {
        dispatchScheduled_ = true;
        scheduleDispatch(std::max(readyAt, now()));
    }
}

void
Pe::activate(const std::string &name, Cycles readyAt)
{
    activate(taskId(name), readyAt);
}

void
Pe::dispatchPending()
{
    dispatchScheduled_ = false;
    if (halted())
        return; // Keep pending_ intact: the diagnosis reports it.
    if (pending_.empty())
        return;
    auto [taskIdx, readyAt] = pending_.front();
    pending_.pop_front();
    const TaskInfo &task = tasks_[static_cast<size_t>(taskIdx)];

    const ArchParams &p = sim_.params();
    Cycles ready = std::max(readyAt, now());
    // The dispatch itself costs activation overhead on the work timeline.
    Cycles start =
        reserveWork(ready, p.taskActivateCycles) + p.taskActivateCycles;

    taskActivations_++;
    shardStats().taskActivations++;

    TaskContext ctx(sim_, *this, start);
    task.fn(ctx);
    // Charge the consumed core time onto the work timeline.
    if (ctx.consumed() > 0)
        reserveWork(start, ctx.consumed());
    busyCycles_ += p.taskActivateCycles + ctx.consumed();

    if (!pending_.empty()) {
        dispatchScheduled_ = true;
        Cycles next = std::max(pending_.front().second, workFree_);
        scheduleDispatch(std::max(next, now()));
    }
}

Cycles
Pe::reserveWork(Cycles from, Cycles n)
{
    Cycles start = std::max(from, workFree_);
    if (stutterFactor_ > 1 && start >= stutterFrom_ &&
        start < stutterUntil_)
        n *= stutterFactor_;
    workFree_ = start + n;
    return start;
}

const std::string &
Pe::taskName(int32_t taskIdx) const
{
    WSC_ASSERT(taskIdx >= 0 &&
                   static_cast<size_t>(taskIdx) < tasks_.size(),
               "invalid task index " << taskIdx);
    return tasks_[static_cast<size_t>(taskIdx)].name;
}

void
Pe::resetStats()
{
    taskActivations_ = 0;
    busyCycles_ = 0;
}

} // namespace wsc::wse
