#include "wse/dsd.h"

#include "support/error.h"

namespace wsc::wse {

[[noreturn]] void
Dsd::accessError(int64_t idx) const
{
    WSC_ASSERT(buf, "DSD with null buffer");
    panic(strcat("DSD access out of range: idx=", idx,
                 " size=", buf->size()));
}

namespace {

/** Number of elements a builtin iterates over (the dest length). */
int64_t
opLength(const Dsd &dest)
{
    WSC_ASSERT(dest.length > 0, "DSD builtin over empty destination");
    return dest.length;
}

} // namespace

void
fadds(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) + b.read(i);
    ctx.dsdOp(n, 1);
}

void
fsubs(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) - b.read(i);
    ctx.dsdOp(n, 1);
}

void
fmuls(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) * b.read(i);
    ctx.dsdOp(n, 1);
}

void
fmovs(TaskContext &ctx, const Dsd &dest, const DsdOperand &src)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = src.read(i);
    ctx.dsdOp(n, 0, /*bytesPerElem=*/8);
}

void
fmacs(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b, float scalar)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) + b.read(i) * scalar;
    ctx.dsdOp(n, 2);
}

} // namespace wsc::wse
