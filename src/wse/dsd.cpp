#include "wse/dsd.h"

#include "support/error.h"

namespace wsc::wse {

float &
Dsd::at(int64_t i) const
{
    WSC_ASSERT(buf, "DSD with null buffer");
    if (wrap > 0)
        i %= wrap;
    int64_t idx = offset + i * stride;
    WSC_ASSERT(idx >= 0 && idx < static_cast<int64_t>(buf->size()),
               "DSD access out of range: idx=" << idx << " size="
                                               << buf->size());
    return (*buf)[idx];
}

Dsd
Dsd::shifted(int64_t delta) const
{
    Dsd d = *this;
    d.offset += delta;
    return d;
}

Dsd
Dsd::withLength(int64_t newLength) const
{
    Dsd d = *this;
    d.length = newLength;
    return d;
}

DsdOperand
DsdOperand::fromDsd(const Dsd &d)
{
    DsdOperand o;
    o.dsd = d;
    return o;
}

DsdOperand
DsdOperand::fromScalar(float s)
{
    DsdOperand o;
    o.scalar = s;
    o.isScalar = true;
    return o;
}

float
DsdOperand::read(int64_t i) const
{
    return isScalar ? scalar : dsd.at(i);
}

namespace {

/** Number of elements a builtin iterates over (the dest length). */
int64_t
opLength(const Dsd &dest)
{
    WSC_ASSERT(dest.length > 0, "DSD builtin over empty destination");
    return dest.length;
}

} // namespace

void
fadds(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) + b.read(i);
    ctx.dsdOp(n, 1);
}

void
fsubs(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) - b.read(i);
    ctx.dsdOp(n, 1);
}

void
fmuls(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) * b.read(i);
    ctx.dsdOp(n, 1);
}

void
fmovs(TaskContext &ctx, const Dsd &dest, const DsdOperand &src)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = src.read(i);
    ctx.dsdOp(n, 0, /*bytesPerElem=*/8);
}

void
fmacs(TaskContext &ctx, const Dsd &dest, const DsdOperand &a,
      const DsdOperand &b, float scalar)
{
    int64_t n = opLength(dest);
    for (int64_t i = 0; i < n; ++i)
        dest.at(i) = a.read(i) + b.read(i) * scalar;
    ctx.dsdOp(n, 2);
}

} // namespace wsc::wse
