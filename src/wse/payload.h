/**
 * @file
 * Recycled payload buffers for fabric streams.
 *
 * Every stream payload (one chunk of a halo exchange, one test vector)
 * lives in a PayloadSlot owned by the sending shard's PayloadPool and is
 * reference-counted by the in-flight events that carry it: the stream
 * segment walking the fabric, every scheduled delivery, and any receiver
 * stash that pins the data until a receive callback consumes it. When
 * the last reference drops, the slot pushes itself back onto its pool's
 * free stack — a lock-free multi-producer/single-consumer Treiber stack,
 * since deliveries on other shards may release concurrently with the
 * owner shard acquiring. Steady state allocates nothing: slot vectors
 * keep their capacity across reuse.
 */

#ifndef WSC_WSE_PAYLOAD_H
#define WSC_WSE_PAYLOAD_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

namespace wsc::wse {

class PayloadPool;

/** One recycled payload buffer (see file comment for the lifecycle). */
struct PayloadSlot
{
    std::vector<float> data;
    std::atomic<uint32_t> refs{0};
    /** Set by fault injection when the payload was corrupted in flight;
     *  cleared on every acquire(). Receivers may inspect it through
     *  PayloadRef::corrupted() (the data itself carries the seeded
     *  garbage value — this flag only attributes it). */
    bool corrupted = false;
    /** Slot position within the owning pool. */
    uint32_t index = 0;
    /** Free-stack link: successor index + 1, or 0 for stack bottom. */
    uint32_t nextFree = 0;
    PayloadPool *pool = nullptr;
};

/**
 * Reference-counted handle to a payload slot. Copying increments the
 * slot's count; destroying the last handle returns the slot to its pool.
 */
class PayloadRef
{
  public:
    PayloadRef() = default;

    PayloadRef(const PayloadRef &other) noexcept : slot_(other.slot_)
    {
        if (slot_)
            slot_->refs.fetch_add(1, std::memory_order_relaxed);
    }

    PayloadRef(PayloadRef &&other) noexcept : slot_(other.slot_)
    {
        other.slot_ = nullptr;
    }

    PayloadRef &
    operator=(const PayloadRef &other) noexcept
    {
        if (this != &other) {
            reset();
            slot_ = other.slot_;
            if (slot_)
                slot_->refs.fetch_add(1, std::memory_order_relaxed);
        }
        return *this;
    }

    PayloadRef &
    operator=(PayloadRef &&other) noexcept
    {
        if (this != &other) {
            reset();
            slot_ = other.slot_;
            other.slot_ = nullptr;
        }
        return *this;
    }

    ~PayloadRef() { reset(); }

    bool valid() const { return slot_ != nullptr; }

    /** The payload bytes; valid while any reference is held. */
    const std::vector<float> &data() const { return slot_->data; }

    /** Writable view for the producer filling a freshly acquired slot;
     *  must not be used once the payload has been handed to the fabric. */
    std::vector<float> &mutableData() { return slot_->data; }

    /** Whether fault injection corrupted this payload (see PayloadSlot). */
    bool corrupted() const { return slot_->corrupted; }
    /** Mark the payload corrupted (fault-injection path only). */
    void markCorrupted() { slot_->corrupted = true; }

    /** Drop this reference (possibly returning the slot to its pool). */
    inline void reset() noexcept;

  private:
    friend class PayloadPool;
    explicit PayloadRef(PayloadSlot *slot) : slot_(slot) {}

    PayloadSlot *slot_ = nullptr;
};

/**
 * Per-shard ring of payload slots. acquire() is called only by the
 * worker currently executing the owning shard's window (single
 * consumer — the claim flag gives exactly one worker the shard per
 * window, and the window barrier orders hand-offs between workers);
 * releases may come from any shard that held the final delivery
 * reference (multi-producer).
 */
class PayloadPool
{
  public:
    PayloadPool() = default;
    PayloadPool(const PayloadPool &) = delete;
    PayloadPool &operator=(const PayloadPool &) = delete;

    /** A slot with one reference and empty (capacity-retaining) data.
     *  Only from the worker executing the owning shard's window. */
    PayloadRef
    acquire()
    {
        acquireCount_++;
        uint32_t head = freeHead_.load(std::memory_order_acquire);
        while (head != 0) {
            PayloadSlot &slot = slots_[head - 1];
            // Safe to read: only this thread pops, and pushed slots are
            // immutable until popped.
            uint32_t next = slot.nextFree;
            if (freeHead_.compare_exchange_weak(
                    head, next, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                slot.refs.store(1, std::memory_order_relaxed);
                slot.data.clear();
                slot.corrupted = false;
                return PayloadRef(&slot);
            }
        }
        createdCount_++;
        PayloadSlot &slot = slots_.emplace_back();
        slot.index = static_cast<uint32_t>(slots_.size() - 1);
        slot.pool = this;
        slot.refs.store(1, std::memory_order_relaxed);
        return PayloadRef(&slot);
    }

    /// @name Introspection (tests, docs)
    /// @{
    /** Slots ever created (the ring's high-water mark). */
    size_t slotCount() const { return slots_.size(); }
    /** Total acquire() calls. */
    uint64_t acquires() const { return acquireCount_; }
    /** Acquires that had to create a fresh slot (ring misses). */
    uint64_t created() const { return createdCount_; }
    /** Slots currently referenced (0 once every payload is consumed). */
    size_t
    liveSlots() const
    {
        size_t live = 0;
        for (const PayloadSlot &slot : slots_)
            if (slot.refs.load(std::memory_order_relaxed) != 0)
                live++;
        return live;
    }
    /// @}

  private:
    friend class PayloadRef;

    /** Return a slot whose refcount reached zero (any thread). */
    void
    release(PayloadSlot *slot)
    {
        uint32_t head = freeHead_.load(std::memory_order_relaxed);
        do {
            slot->nextFree = head;
        } while (!freeHead_.compare_exchange_weak(
            head, slot->index + 1, std::memory_order_release,
            std::memory_order_relaxed));
    }

    /** Deque so slot addresses survive growth while refs are live. */
    std::deque<PayloadSlot> slots_;
    /** Free stack head: slot index + 1; 0 marks the empty stack. */
    std::atomic<uint32_t> freeHead_{0};
    uint64_t acquireCount_ = 0;
    uint64_t createdCount_ = 0;
};

inline void
PayloadRef::reset() noexcept
{
    if (!slot_)
        return;
    if (slot_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1)
        slot_->pool->release(slot_);
    slot_ = nullptr;
}

} // namespace wsc::wse

#endif // WSC_WSE_PAYLOAD_H
