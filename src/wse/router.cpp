#include "wse/router.h"

#include "support/error.h"

namespace wsc::wse {

namespace {

Direction
opposite(Direction d)
{
    switch (d) {
      case Direction::East:
        return Direction::West;
      case Direction::West:
        return Direction::East;
      case Direction::North:
        return Direction::South;
      case Direction::South:
        return Direction::North;
    }
    panic("unreachable direction");
}

} // namespace

void
Router::configure(Color color, RouteConfig config)
{
    WSC_ASSERT(color < kNumColors, "color " << int(color)
                                            << " out of range");
    WSC_ASSERT(!config.positions.empty(), "route without positions");
    routes_[color] = std::move(config);
}

bool
Router::hasRoute(Color color) const
{
    return routes_.count(color) > 0;
}

const RouteConfig &
Router::route(Color color) const
{
    auto it = routes_.find(color);
    WSC_ASSERT(it != routes_.end(),
               "no route configured for color " << int(color));
    return it->second;
}

void
Router::advanceSwitch(Color color)
{
    auto it = routes_.find(color);
    WSC_ASSERT(it != routes_.end(),
               "advancing switch of unconfigured color " << int(color));
    RouteConfig &config = it->second;
    config.current = (config.current + 1) % config.positions.size();
}

void
Router::resetSwitches()
{
    for (auto &[color, config] : routes_)
        config.current = 0;
}

RouteConfig
makeStarRoute(Direction dir, bool isSender, bool isTerminal,
              bool selfTransmit)
{
    RouteConfig config;
    RoutePosition pos;
    if (isSender) {
        // Injection position: accept from the ramp, transmit outward.
        pos.txTo.insert(dir);
        if (selfTransmit)
            pos.deliverToRamp = true; // WSE2: the self-copy.
    } else {
        pos.rxFrom.insert(opposite(dir));
        pos.deliverToRamp = true;
        if (!isTerminal)
            pos.txTo.insert(dir); // forward-and-deliver multicast
    }
    config.positions.push_back(pos);
    return config;
}

} // namespace wsc::wse
