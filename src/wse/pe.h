/**
 * @file
 * Processing-element model: private memory with capacity accounting,
 * actor-style tasks (data / control / local) dispatched one at a time,
 * and a single work timeline on which compute and ramp transfers
 * serialize (see simulator.h for the timing-model rationale).
 */

#ifndef WSC_WSE_PE_H
#define WSC_WSE_PE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "wse/arch_params.h"

namespace wsc::wse {

class Simulator;

/** The three CSL task flavours (software actors). */
enum class TaskKind { Data, Control, Local };

/**
 * Context passed to an executing task. Tasks account their compute cost
 * through consume()/dsdOp() and may activate other tasks or launch
 * asynchronous operations.
 */
class TaskContext
{
  public:
    TaskContext(Simulator &sim, class Pe &pe, Cycles start)
        : sim_(sim), pe_(pe), start_(start)
    {
    }

    Simulator &sim() { return sim_; }
    class Pe &pe() { return pe_; }

    /** Cycle at which the task began executing. */
    Cycles startCycle() const { return start_; }
    /** Current logical time inside the task (start + consumed). */
    Cycles currentCycle() const { return start_ + consumed_; }
    /** Total cycles consumed so far. */
    Cycles consumed() const { return consumed_; }

    /** Charge raw cycles of core time. */
    void consume(Cycles cycles) { consumed_ += cycles; }

    /**
     * Charge one DSD builtin over `elems` elements, updating FLOP stats
     * with `flopsPerElem` and memory traffic with `bytesPerElem`
     * (default: two 4-byte reads + one 4-byte write).
     */
    void dsdOp(uint64_t elems, int flopsPerElem, int bytesPerElem = 12);

  private:
    Simulator &sim_;
    class Pe &pe_;
    Cycles start_;
    Cycles consumed_ = 0;
};

using TaskFn = std::function<void(TaskContext &)>;

/** One simulated processing element. */
class Pe
{
  public:
    Pe(Simulator &sim, int x, int y);

    int x() const { return x_; }
    int y() const { return y_; }

    /// @name Memory
    /// @{
    /**
     * Allocate a named f32 buffer; throws FatalError when the 48 kB PE
     * memory would be exceeded.
     */
    std::vector<float> &allocBuffer(const std::string &name, size_t elems);
    std::vector<float> &buffer(const std::string &name);
    bool hasBuffer(const std::string &name) const;
    void freeBuffer(const std::string &name);
    size_t memoryBytesUsed() const { return bytesUsed_; }
    /// @}

    /// @name Scalar state (module-level variables)
    /// @{
    double &scalar(const std::string &name) { return scalars_[name]; }
    bool hasScalar(const std::string &name) const
    {
        return scalars_.count(name) > 0;
    }
    /// @}

    /// @name Tasks
    /// @{
    void registerTask(const std::string &name, TaskKind kind, TaskFn fn);
    bool hasTask(const std::string &name) const;
    /**
     * Request activation of a task as of cycle `readyAt`; it dispatches
     * when the PE work timeline is free, after the activation overhead.
     */
    void activate(const std::string &name, Cycles readyAt);
    /// @}

    /// @name Work timeline
    /// @{
    /**
     * Reserve `n` cycles of the PE work timeline no earlier than `from`;
     * returns the cycle at which the reservation starts.
     */
    Cycles reserveWork(Cycles from, Cycles n);
    /** Next free cycle on the work timeline. */
    Cycles workFree() const { return workFree_; }
    /// @}

    /// @name Per-PE statistics
    /// @{
    uint64_t taskActivations() const { return taskActivations_; }
    Cycles busyCycles() const { return busyCycles_; }
    void resetStats();
    /// @}

  private:
    struct TaskInfo
    {
        TaskKind kind;
        TaskFn fn;
    };

    void dispatchPending();

    Simulator &sim_;
    int x_;
    int y_;
    std::map<std::string, std::vector<float>> buffers_;
    std::map<std::string, double> scalars_;
    size_t bytesUsed_ = 0;
    std::map<std::string, TaskInfo> tasks_;
    std::deque<std::pair<const TaskInfo *, Cycles>> pending_;
    bool dispatchScheduled_ = false;
    Cycles workFree_ = 0;
    uint64_t taskActivations_ = 0;
    Cycles busyCycles_ = 0;
};

} // namespace wsc::wse

#endif // WSC_WSE_PE_H
