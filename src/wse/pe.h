/**
 * @file
 * Processing-element model: private memory with capacity accounting,
 * actor-style tasks (data / control / local) dispatched one at a time,
 * and a single work timeline on which compute and ramp transfers
 * serialize (see simulator.h for the timing-model rationale).
 *
 * Tasks, buffers and scalars are identified by dense interned handles
 * (TaskId / BufferId / ScalarId) backed by flat per-PE tables; every
 * per-activation and per-access hot path is an O(1) index. The
 * string-named API remains as a thin resolve-once wrapper used at
 * registration time and by tests.
 */

#ifndef WSC_WSE_PE_H
#define WSC_WSE_PE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "wse/arch_params.h"

namespace wsc::wse {

class Simulator;
class Shard;
class PayloadPool;
struct SimStats;

/** The three CSL task flavours (software actors). */
enum class TaskKind { Data, Control, Local };

/** Dense handle of a task registered on one PE. */
struct TaskId
{
    int32_t index = -1;
    bool valid() const { return index >= 0; }
    bool operator==(const TaskId &) const = default;
};

/** Dense handle of a named buffer on one PE. Survives freeBuffer():
 *  re-allocating the same name reuses the handle (and the slot). */
struct BufferId
{
    int32_t index = -1;
    bool valid() const { return index >= 0; }
    bool operator==(const BufferId &) const = default;
};

/** Dense handle of a module-level scalar variable on one PE. */
struct ScalarId
{
    int32_t index = -1;
    bool valid() const { return index >= 0; }
    bool operator==(const ScalarId &) const = default;
};

/**
 * Context passed to an executing task. Tasks account their compute cost
 * through consume()/dsdOp() and may activate other tasks or launch
 * asynchronous operations.
 */
class TaskContext
{
  public:
    TaskContext(Simulator &sim, class Pe &pe, Cycles start)
        : sim_(sim), pe_(pe), start_(start)
    {
    }

    Simulator &sim() { return sim_; }
    class Pe &pe() { return pe_; }

    /** Cycle at which the task began executing. */
    Cycles startCycle() const { return start_; }
    /** Current logical time inside the task (start + consumed). */
    Cycles currentCycle() const { return start_ + consumed_; }
    /** Total cycles consumed so far. */
    Cycles consumed() const { return consumed_; }

    /** Charge raw cycles of core time. */
    void consume(Cycles cycles) { consumed_ += cycles; }

    /**
     * Charge one DSD builtin over `elems` elements, updating FLOP stats
     * with `flopsPerElem` and memory traffic with `bytesPerElem`
     * (default: two 4-byte reads + one 4-byte write).
     */
    void dsdOp(uint64_t elems, int flopsPerElem, int bytesPerElem = 12);

  private:
    Simulator &sim_;
    class Pe &pe_;
    Cycles start_;
    Cycles consumed_ = 0;
};

using TaskFn = std::function<void(TaskContext &)>;

/** One simulated processing element. */
class Pe
{
  public:
    /** Constructed by Simulator: `shard` owns this PE's grid tile and
     *  `id` is the dense grid index used in event-ordering keys. */
    Pe(Simulator &sim, Shard &shard, int x, int y, uint32_t id);

    int x() const { return x_; }
    int y() const { return y_; }
    /** Dense grid index (x * height + y). */
    uint32_t id() const { return id_; }

    /// @name Shard facade
    /// All of this PE's scheduling, time and statistics go through its
    /// owning shard, keeping the hot paths shard-local and lock-free.
    /// @{
    Shard &shard() { return shard_; }
    /** The owning shard's clock (== global clock at threads=1). */
    Cycles now() const;
    /** The owning shard's statistics accumulator. */
    SimStats &shardStats();
    /** The owning shard's payload ring. */
    PayloadPool &payloadPool();
    /// @}

    /// @name Memory
    /// @{
    /**
     * Allocate a named f32 buffer and return its dense handle; throws
     * FatalError when the 48 kB PE memory would be exceeded. A name
     * freed earlier may be re-allocated and keeps its handle.
     */
    BufferId allocBufferId(const std::string &name, size_t elems);
    /** Name-based convenience wrapper around allocBufferId(). */
    std::vector<float> &allocBuffer(const std::string &name, size_t elems);
    /** O(1) access through the dense handle (hot path). */
    std::vector<float> &
    buffer(BufferId id)
    {
        checkBufferLive(id);
        return buffers_[static_cast<size_t>(id.index)].data;
    }
    std::vector<float> &buffer(const std::string &name);
    /** Resolve a live buffer name; panics when unknown or freed. */
    BufferId bufferId(const std::string &name) const;
    /** Resolve a live buffer name; invalid handle when unknown/freed. */
    BufferId findBuffer(const std::string &name) const;
    /** Name of a buffer slot (diagnostics). */
    const std::string &bufferName(BufferId id) const;
    bool hasBuffer(const std::string &name) const;
    void freeBuffer(BufferId id);
    void freeBuffer(const std::string &name);
    size_t memoryBytesUsed() const { return bytesUsed_; }
    /// @}

    /// @name Scalar state (module-level variables)
    /// @{
    /**
     * Intern a scalar name to its dense handle (creates the scalar,
     * value 0, on first use — the resolve-once registration step).
     */
    ScalarId scalarId(const std::string &name);
    /** Resolve without interning; invalid handle when unknown. */
    ScalarId findScalar(const std::string &name) const;
    /** O(1) access through the dense handle (hot path). References are
     *  invalidated by interning further scalars, so resolve all names
     *  before holding references across calls. */
    double &
    scalar(ScalarId id)
    {
        checkScalar(id);
        return scalars_[static_cast<size_t>(id.index)];
    }
    /** Unchecked O(1) access for handles pre-validated at configure
     *  time (the interpreter's tier-3 contract): no validity branch on
     *  the per-instruction path. */
    double &
    scalarUnchecked(ScalarId id)
    {
        return scalars_[static_cast<size_t>(id.index)];
    }
    double &scalar(const std::string &name) { return scalar(scalarId(name)); }
    bool hasScalar(const std::string &name) const
    {
        return scalarIds_.count(name) > 0;
    }
    /// @}

    /// @name Tasks
    /// @{
    TaskId registerTask(const std::string &name, TaskKind kind, TaskFn fn);
    /** Resolve a registered task name; panics when unknown. */
    TaskId taskId(const std::string &name) const;
    /** Resolve without panicking; invalid handle when unknown. */
    TaskId findTask(const std::string &name) const;
    bool hasTask(const std::string &name) const;
    /**
     * Request activation of a task as of cycle `readyAt`; it dispatches
     * when the PE work timeline is free, after the activation overhead.
     * The TaskId overload is the O(1) hot path.
     */
    void activate(TaskId task, Cycles readyAt);
    void activate(const std::string &name, Cycles readyAt);
    /// @}

    /// @name Work timeline
    /// @{
    /**
     * Reserve `n` cycles of the PE work timeline no earlier than `from`;
     * returns the cycle at which the reservation starts. A stutter fault
     * whose window contains the start multiplies `n`.
     */
    Cycles reserveWork(Cycles from, Cycles n);
    /** Next free cycle on the work timeline. */
    Cycles workFree() const { return workFree_; }
    /// @}

    /// @name Fault injection (wse/fault.h; configured by the Simulator)
    /// @{
    /**
     * Halt the compute element from cycle `at` on: no task dispatches
     * happen at or after the threshold. Activations keep queueing on
     * pending_ so the diagnosis can name what the dead PE never ran.
     * Halting is a pure threshold — it schedules no events and perturbs
     * no event ordering, so fault-free state is untouched.
     */
    void setHaltAt(Cycles at) { haltAt_ = at; }
    /** The halt threshold (max Cycles when never halting). */
    Cycles haltAt() const { return haltAt_; }
    /** Whether the CE is halted as of cycle `c`. */
    bool haltedAt(Cycles c) const { return c >= haltAt_; }
    /** Whether the CE is halted at the current shard time. */
    bool halted() const { return haltedAt(now()); }
    /** Multiply work reservations starting in [from, until) by factor. */
    void
    setStutter(Cycles from, Cycles until, uint32_t factor)
    {
        stutterFrom_ = from;
        stutterUntil_ = until;
        stutterFactor_ = factor;
    }
    /// @}

    /// @name Diagnosis introspection
    /// @{
    /** Activations not yet dispatched: (task index, readyAt). */
    const std::deque<std::pair<int32_t, Cycles>> &
    pendingActivations() const
    {
        return pending_;
    }
    /** Registered name of a task index (diagnosis tables). */
    const std::string &taskName(int32_t taskIdx) const;
    /// @}

    /// @name Per-PE statistics
    /// @{
    uint64_t taskActivations() const { return taskActivations_; }
    Cycles busyCycles() const { return busyCycles_; }
    void resetStats();
    /// @}

  private:
    struct TaskInfo
    {
        std::string name; ///< for diagnosis tables only
        TaskKind kind;
        TaskFn fn;
    };

    /** One buffer slot; `live` is false between free and re-alloc. */
    struct BufferSlot
    {
        std::string name;
        std::vector<float> data;
        bool live = false;
    };

    void checkBufferLive(BufferId id) const;
    void checkScalar(ScalarId id) const;
    void dispatchPending();
    /** Schedule a dispatch event on the owning shard. */
    void scheduleDispatch(Cycles at);

    Simulator &sim_;
    Shard &shard_;
    int x_;
    int y_;
    uint32_t id_;
    /** Deque so slot (and vector) addresses survive later allocations —
     *  DSDs hold pointers to the slot's data vector. */
    std::deque<BufferSlot> buffers_;
    std::unordered_map<std::string, int32_t> bufferIds_;
    std::vector<double> scalars_;
    std::unordered_map<std::string, int32_t> scalarIds_;
    size_t bytesUsed_ = 0;
    /** Deque so TaskInfo references stay stable if a running task
     *  registers further tasks. */
    std::deque<TaskInfo> tasks_;
    std::unordered_map<std::string, int32_t> taskIds_;
    /** (task index, readyAt) activation queue. */
    std::deque<std::pair<int32_t, Cycles>> pending_;
    bool dispatchScheduled_ = false;
    Cycles workFree_ = 0;
    uint64_t taskActivations_ = 0;
    Cycles busyCycles_ = 0;
    /** Fault thresholds (defaults injected nothing; see wse/fault.h). */
    Cycles haltAt_ = ~static_cast<Cycles>(0);
    Cycles stutterFrom_ = 0;
    Cycles stutterUntil_ = 0;
    uint32_t stutterFactor_ = 1;
};

} // namespace wsc::wse

#endif // WSC_WSE_PE_H
