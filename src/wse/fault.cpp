#include "wse/fault.h"

#include <sstream>

namespace wsc::wse {

FaultPlan &
FaultPlan::haltPe(int x, int y, Cycles at)
{
    peHalts.push_back({x, y, at});
    return *this;
}

FaultPlan &
FaultPlan::stutterPe(int x, int y, Cycles from, Cycles until,
                     uint32_t factor)
{
    peStutters.push_back({x, y, from, until, factor});
    return *this;
}

FaultPlan &
FaultPlan::dropLink(int x, int y, Direction dir, Cycles at)
{
    linkFaults.push_back({x, y, dir, at, LinkFaultKind::Drop, 0});
    return *this;
}

FaultPlan &
FaultPlan::degradeLink(int x, int y, Direction dir, Cycles at,
                       Cycles extraHopCycles)
{
    linkFaults.push_back(
        {x, y, dir, at, LinkFaultKind::Degrade, extraHopCycles});
    return *this;
}

FaultPlan &
FaultPlan::corruptPayload(int x, int y, Direction dir, uint64_t nth)
{
    payloadFaults.push_back({x, y, dir, nth, PayloadFaultKind::Corrupt});
    return *this;
}

FaultPlan &
FaultPlan::dropPayload(int x, int y, Direction dir, uint64_t nth)
{
    payloadFaults.push_back({x, y, dir, nth, PayloadFaultKind::Drop});
    return *this;
}

uint64_t
faultMix(uint64_t v)
{
    // splitmix64 finalizer: cheap, full-avalanche, and stable across
    // platforms — the corruption schedule must never depend on libc rand.
    v += 0x9e3779b97f4a7c15ULL;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
    return v ^ (v >> 31);
}

float
faultCorruptionValue(uint64_t seed, uint64_t salt)
{
    uint64_t m = faultMix(seed ^ faultMix(salt));
    // A finite garbage value: NaN would break bitwise run comparisons
    // (NaN != NaN), and the point of seeded corruption is that two runs
    // of the same plan observe the same wrong bits.
    int32_t mantissa = static_cast<int32_t>(m & 0xffffff) - 0x800000;
    return static_cast<float>(mantissa) * 1.0e3f;
}

const char *
simOutcomeName(SimOutcome outcome)
{
    switch (outcome) {
    case SimOutcome::Completed:
        return "completed";
    case SimOutcome::Degraded:
        return "degraded";
    case SimOutcome::Deadlock:
        return "deadlock";
    case SimOutcome::EventBudgetExceeded:
        return "event-budget-exceeded";
    }
    return "unknown";
}

std::string
SimDiagnosis::toString() const
{
    std::ostringstream os;
    os << "simulation " << simOutcomeName(outcome) << " at cycle "
       << atCycle << " after " << eventsProcessed << " events";
    if (outcome == SimOutcome::EventBudgetExceeded)
        os << " (budget " << eventBudget << ")";
    os << "\n";

    if (!queues.empty()) {
        os << "  event queues:\n";
        for (const ShardQueueInfo &q : queues) {
            os << "    shard " << q.shard << ": depth " << q.depth;
            if (q.depth > 0)
                os << ", next event at cycle " << q.nextAt;
            if (q.outboxPending > 0)
                os << ", " << q.outboxPending
                   << " cross-shard events pending in outboxes";
            os << "\n";
        }
    }

    if (blockedPeTotal > 0) {
        os << "  blocked PEs (" << blockedPeTotal << " total, oldest first";
        if (blockedPes.size() < blockedPeTotal)
            os << ", showing " << blockedPes.size();
        os << "):\n";
        for (const BlockedPeInfo &b : blockedPes) {
            os << "    PE (" << b.x << ", " << b.y << "): " << b.what
               << " since cycle " << b.since;
            if (b.peHalted)
                os << " [halted by fault plan]";
            os << "\n";
        }
    }

    if (pendingTaskTotal > 0) {
        os << "  pending task activations (" << pendingTaskTotal
           << " total";
        if (pendingTasks.size() < pendingTaskTotal)
            os << ", showing " << pendingTasks.size();
        os << "):\n";
        for (const PendingTaskInfo &t : pendingTasks) {
            os << "    PE (" << t.x << ", " << t.y << "): task '" << t.task
               << "' ready at cycle " << t.readyAt;
            if (t.queuedBehind > 0)
                os << " (+" << t.queuedBehind << " queued behind)";
            if (t.peHalted)
                os << " [halted by fault plan]";
            os << "\n";
        }
    }

    if (!busiestPes.empty()) {
        os << "  busiest PEs by queued events:\n";
        for (const BusyPeInfo &p : busiestPes)
            os << "    PE (" << p.x << ", " << p.y << "): "
               << p.queuedEvents << " queued\n";
    }

    if (!busyLinks.empty()) {
        os << "  links reserved past the final cycle:\n";
        for (const BusyLinkInfo &l : busyLinks)
            os << "    (" << l.x << ", " << l.y << ") "
               << directionName(l.dir) << ": busy until cycle "
               << l.busyUntil << "\n";
    }

    return os.str();
}

} // namespace wsc::wse
