#include "wse/simulator.h"

#include "support/error.h"

namespace wsc::wse {

Simulator::Simulator(const ArchParams &params, int width, int height)
    : params_(params), width_(width), height_(height)
{
    WSC_ASSERT(width > 0 && height > 0, "empty PE grid");
    if (width > params.fabricWidth || height > params.fabricHeight)
        fatal(strcat("requested PE grid ", width, "x", height,
                     " exceeds the ", params.name, " fabric (",
                     params.fabricWidth, "x", params.fabricHeight, ")"));
    pes_.reserve(static_cast<size_t>(width) * height);
    for (int x = 0; x < width; ++x)
        for (int y = 0; y < height; ++y)
            pes_.push_back(std::make_unique<Pe>(*this, x, y));
    fabric_ = std::make_unique<Fabric>(*this);
}

Simulator::~Simulator() = default;

Pe &
Simulator::pe(int x, int y)
{
    WSC_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
               "PE coordinates (" << x << ", " << y << ") out of range");
    return *pes_[static_cast<size_t>(x) * height_ + y];
}

void
Simulator::schedule(Cycles at, std::function<void()> fn)
{
    WSC_ASSERT(at >= now_, "scheduling into the past (at=" << at << ", now="
                                                           << now_ << ")");
    queue_.push(Event{at, nextSeq_++, std::move(fn)});
}

Cycles
Simulator::run(uint64_t maxEvents)
{
    uint64_t processed = 0;
    while (!queue_.empty()) {
        if (processed++ >= maxEvents)
            fatal("simulation exceeded the event budget (livelock?)");
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.at;
        stats_.eventsProcessed++;
        ev.fn();
    }
    return now_;
}

} // namespace wsc::wse
