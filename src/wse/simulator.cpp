#include "wse/simulator.h"

#include "support/error.h"

namespace wsc::wse {

namespace {

/** Initial capacity of the event heap and callback slot pool. */
constexpr size_t kInitialQueueCapacity = 1024;

} // namespace

Simulator::Simulator(const ArchParams &params, int width, int height)
    : params_(params), width_(width), height_(height)
{
    WSC_ASSERT(width > 0 && height > 0, "empty PE grid");
    if (width > params.fabricWidth || height > params.fabricHeight)
        fatal(strcat("requested PE grid ", width, "x", height,
                     " exceeds the ", params.name, " fabric (",
                     params.fabricWidth, "x", params.fabricHeight, ")"));
    heap_.reserve(kInitialQueueCapacity);
    slots_.reserve(kInitialQueueCapacity);
    freeSlots_.reserve(kInitialQueueCapacity);
    pes_.reserve(static_cast<size_t>(width) * height);
    for (int x = 0; x < width; ++x)
        for (int y = 0; y < height; ++y)
            pes_.push_back(std::make_unique<Pe>(*this, x, y));
    fabric_ = std::make_unique<Fabric>(*this);
}

Simulator::~Simulator() = default;

Pe &
Simulator::pe(int x, int y)
{
    WSC_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
               "PE coordinates (" << x << ", " << y << ") out of range");
    return *pes_[static_cast<size_t>(x) * height_ + y];
}

void
Simulator::siftUp(size_t i)
{
    EventKey key = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!before(key, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = key;
}

void
Simulator::siftDown(size_t i)
{
    const size_t n = heap_.size();
    EventKey key = heap_[i];
    for (;;) {
        size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            child++;
        if (!before(heap_[child], key))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = key;
}

void
Simulator::schedule(Cycles at, EventCallback fn)
{
    WSC_ASSERT(at >= now_, "scheduling into the past (at=" << at << ", now="
                                                           << now_ << ")");
    uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = std::move(fn);
    } else {
        slot = static_cast<uint32_t>(slots_.size());
        slots_.push_back(std::move(fn));
    }
    heap_.push_back(EventKey{at, nextSeq_++, slot});
    siftUp(heap_.size() - 1);
}

Cycles
Simulator::run(uint64_t maxEvents)
{
    uint64_t processed = 0;
    while (!heap_.empty()) {
        if (processed++ >= maxEvents)
            fatal("simulation exceeded the event budget (livelock?)");
        EventKey top = heap_.front();
        heap_.front() = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        now_ = top.at;
        stats_.eventsProcessed++;
        // Move the callback out before invoking: the callback may
        // schedule new events, which can grow (and relocate) the slot
        // pool while it runs.
        EventCallback cb = std::move(slots_[top.slot]);
        freeSlots_.push_back(top.slot);
        cb();
    }
    return now_;
}

} // namespace wsc::wse
