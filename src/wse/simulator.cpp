#include "wse/simulator.h"

#include <algorithm>
#include <barrier>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "support/env.h"
#include "support/error.h"

namespace wsc::wse {

namespace {

/** Initial capacity of each shard's event heap and callback slot pool. */
constexpr size_t kInitialQueueCapacity = 1024;

/** Execution context of the current thread (nested runs unsupported). */
struct TlsContext
{
    const Simulator *sim = nullptr;
    Shard *shard = nullptr;
};
thread_local TlsContext tlsCur;

/** RAII setter for the thread's execution context. */
struct TlsGuard
{
    TlsGuard(const Simulator *sim, Shard *shard)
    {
        tlsCur = {sim, shard};
    }
    ~TlsGuard() { tlsCur = {}; }
};

} // namespace

//===----------------------------------------------------------------------===
// Shard
//===----------------------------------------------------------------------===

Shard::Shard(Simulator &sim, int index)
    : sim_(&sim), index_(index), currentOwner_(sim.hostId())
{
    heap_.reserve(kInitialQueueCapacity);
    slots_.reserve(kInitialQueueCapacity);
    freeSlots_.reserve(kInitialQueueCapacity);
    constraints_.reserve(kInitialQueueCapacity);
}

void
Shard::siftUp(size_t i)
{
    EventKey key = heap_[i];
    while (i > 0) {
        size_t parent = (i - 1) / 2;
        if (!before(key, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = key;
}

void
Shard::siftDown(size_t i)
{
    const size_t n = heap_.size();
    EventKey key = heap_[i];
    for (;;) {
        size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            child++;
        if (!before(heap_[child], key))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = key;
}

void
Shard::pushKeyed(uint64_t ownerCreator, uint64_t seq, Cycles at,
                 EventCallback fn)
{
    WSC_ASSERT(at >= now_, "scheduling into the past (at="
                               << at << ", now=" << now_ << ")");
    uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot] = std::move(fn);
    } else {
        slot = static_cast<uint32_t>(slots_.size());
        slots_.push_back(std::move(fn));
    }
    heap_.push_back(EventKey{at, ownerCreator, seq, slot});
    siftUp(heap_.size() - 1);
    if (trackConstraints_) {
        // Adaptive-window bookkeeping: this event cannot influence any
        // other shard before `at + boundaryDist(owner) * hop` (owners
        // beyond the maxWindowHops horizon report 0 and fall under the
        // global fallback cap instead).
        Cycles lat = sim_->constraintLat(
            static_cast<uint32_t>(ownerCreator >> 32));
        if (lat != 0) {
            constraints_.push_back(Constraint{at + lat, at});
            std::push_heap(constraints_.begin(), constraints_.end(),
                           [](const Constraint &a, const Constraint &b) {
                               return a.bound > b.bound;
                           });
        }
    }
}

void
Shard::purgeConstraints(Cycles before)
{
    // Entries whose event already executed (at < the previous window
    // end) are dead; remove them lazily from the top. Dead entries
    // deeper in the heap surface at a later barrier — until then they
    // can only shrink a window (their bound is >= the top's), never
    // widen one, so laziness is safe.
    auto later = [](const Constraint &a, const Constraint &b) {
        return a.bound > b.bound;
    };
    while (!constraints_.empty() && constraints_.front().eventAt < before) {
        std::pop_heap(constraints_.begin(), constraints_.end(), later);
        constraints_.pop_back();
    }
}

Cycles
Shard::constraintBound() const
{
    return constraints_.empty() ? kNoBound : constraints_.front().bound;
}

void
Shard::push(uint32_t owner, Cycles at, EventCallback fn)
{
    pushKeyed(packKey(owner, currentOwner_), nextSeq_++, at,
              std::move(fn));
}

void
Shard::step()
{
    EventKey top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0);
    now_ = top.at;
    currentOwner_ = static_cast<uint32_t>(top.ownerCreator >> 32);
    stats_.eventsProcessed++;
    processed_++;
    // Move the callback out before invoking: the callback may schedule
    // new events, which can grow (and relocate) the slot pool while it
    // runs.
    EventCallback cb = std::move(slots_[top.slot]);
    freeSlots_.push_back(top.slot);
    cb();
}

void
Shard::runWindow(Cycles end, uint64_t maxEvents)
{
    while (!heap_.empty() && heap_.front().at < end) {
        // Same-cycle livelocks never return to the barrier where the
        // global budget is summed, so each shard also bounds its own
        // count (mirrors the sequential path's per-event check). Stop
        // with the events in place: the barrier detects the exhausted
        // budget and the diagnosis reads the queues as they stand.
        if (processed_ >= maxEvents)
            break;
        step();
    }
    currentOwner_ = sim_->hostId();
}

//===----------------------------------------------------------------------===
// Simulator
//===----------------------------------------------------------------------===

Simulator::Simulator(const ArchParams &params, int width, int height,
                     SimOptions options)
    : params_(params), options_(std::move(options)), width_(width),
      height_(height),
      numPes_(static_cast<uint32_t>(width) * static_cast<uint32_t>(height))
{
    WSC_ASSERT(width > 0 && height > 0, "empty PE grid");
    if (width > params.fabricWidth || height > params.fabricHeight)
        fatal(strcat("requested PE grid ", width, "x", height,
                     " exceeds the ", params.name, " fabric (",
                     params.fabricWidth, "x", params.fabricHeight, ")"));
    lookahead_ = std::max<Cycles>(1, params_.hopCycles);

    resolveSharding();
    const int numShards = shardRows_ * shardCols_;
    shards_.reserve(static_cast<size_t>(numShards));
    for (int s = 0; s < numShards; ++s)
        shards_.push_back(std::make_unique<Shard>(*this, s));
    for (auto &shard : shards_)
        shard->outbox_.resize(static_cast<size_t>(numShards));

    // Balanced contiguous tile bands along each axis; a PE's shard is
    // the (row band, column band) tile, row-major.
    tileOfCol_.resize(static_cast<size_t>(width));
    for (int x = 0; x < width; ++x)
        tileOfCol_[static_cast<size_t>(x)] = static_cast<int>(
            (static_cast<int64_t>(x) * shardCols_) / width);
    tileOfRow_.resize(static_cast<size_t>(height));
    for (int y = 0; y < height; ++y)
        tileOfRow_[static_cast<size_t>(y)] = static_cast<int>(
            (static_cast<int64_t>(y) * shardRows_) / height);

    buildConstraintLatencies();
    const bool adaptiveParallel =
        numShards > 1 && options_.adaptiveWindow;
    for (auto &shard : shards_)
        shard->trackConstraints_ = adaptiveParallel;
    claimed_ =
        std::make_unique<std::atomic<bool>[]>(static_cast<size_t>(numShards));
    workerQueues_.resize(static_cast<size_t>(numWorkers_));

    pes_.reserve(numPes_);
    for (int x = 0; x < width; ++x)
        for (int y = 0; y < height; ++y)
            pes_.push_back(std::make_unique<Pe>(
                *this, shardOfPe(peIndex(x, y)), x, y, peIndex(x, y)));
    fabric_ = std::make_unique<Fabric>(*this);
    applyFaultPlan();
}

void
Simulator::resolveSharding()
{
    if (options_.maxWindowHops < 1)
        options_.maxWindowHops = 1;
    maxWindowLat_ =
        static_cast<Cycles>(options_.maxWindowHops) * lookahead_;

    int rows = options_.shardGrid.rows;
    int cols = options_.shardGrid.cols;
    if (rows > 0 || cols > 0) {
        // Explicit tiling: a single set axis leaves the other at 1.
        rows = std::clamp(std::max(rows, 1), 1, height_);
        cols = std::clamp(std::max(cols, 1), 1, width_);
    } else {
        // Auto-derivation: the most-square factorisation r x c of the
        // largest t <= threads that fits the grid. Most-square keeps
        // boundary traffic (tile perimeter) minimal for a given shard
        // count; height=1 grids degenerate to the classic strips.
        rows = cols = 1;
        const int64_t cells =
            static_cast<int64_t>(width_) * static_cast<int64_t>(height_);
        int target = static_cast<int>(std::min<int64_t>(
            std::max(options_.threads, 1), cells));
        for (int t = target; t >= 1; --t) {
            int bestR = 0;
            for (int r = 1; r <= std::min(t, height_); ++r) {
                if (t % r != 0 || t / r > width_)
                    continue;
                if (bestR == 0 ||
                    std::abs(r - t / r) < std::abs(bestR - t / bestR))
                    bestR = r;
            }
            if (bestR != 0) {
                rows = bestR;
                cols = t / bestR;
                break;
            }
        }
    }
    shardRows_ = rows;
    shardCols_ = cols;
    options_.shardGrid = ShardGrid{rows, cols};
    numWorkers_ = std::clamp(options_.threads, 1, rows * cols);
    options_.threads = numWorkers_;
}

void
Simulator::buildConstraintLatencies()
{
    peConstraintLat_.assign(static_cast<size_t>(numPes_) + 1, 0);
    if (shardRows_ * shardCols_ == 1)
        return;
    const Cycles cap = maxWindowLat_;
    // Band extents per axis, to measure the distance to the nearest
    // column/row of a *foreign* tile (only axes that actually have a
    // foreign neighbour count).
    auto bandEdges = [](const std::vector<int> &tileOf, int len, int band,
                        int &lo, int &hi) {
        lo = 0;
        hi = len - 1;
        for (int i = 0; i < len; ++i)
            if (tileOf[static_cast<size_t>(i)] == band) {
                lo = i;
                break;
            }
        for (int i = len - 1; i >= 0; --i)
            if (tileOf[static_cast<size_t>(i)] == band) {
                hi = i;
                break;
            }
    };
    for (int x = 0; x < width_; ++x) {
        int cBand = tileOfCol_[static_cast<size_t>(x)];
        int cLo, cHi;
        bandEdges(tileOfCol_, width_, cBand, cLo, cHi);
        for (int y = 0; y < height_; ++y) {
            int rBand = tileOfRow_[static_cast<size_t>(y)];
            int rLo, rHi;
            bandEdges(tileOfRow_, height_, rBand, rLo, rHi);
            int64_t dist = INT64_MAX;
            if (cBand > 0)
                dist = std::min<int64_t>(dist, x - cLo + 1);
            if (cBand < shardCols_ - 1)
                dist = std::min<int64_t>(dist, cHi - x + 1);
            if (rBand > 0)
                dist = std::min<int64_t>(dist, y - rLo + 1);
            if (rBand < shardRows_ - 1)
                dist = std::min<int64_t>(dist, rHi - y + 1);
            WSC_ASSERT(dist != INT64_MAX,
                       "tile without foreign neighbour in a multi-shard "
                       "grid");
            Cycles lat = static_cast<Cycles>(dist) * lookahead_;
            peConstraintLat_[peIndex(x, y)] = lat <= cap ? lat : 0;
        }
    }
    // Host-owned events may drive fabric sends from any grid position,
    // so they carry the one-hop minimum (exactly the fixed-window
    // assumption the PR 5 engine already relied on).
    peConstraintLat_[numPes_] = lookahead_;
}

void
Simulator::applyFaultPlan()
{
    const FaultPlan &plan = options_.faults;
    if (plan.empty())
        return;
    auto checkPe = [&](int x, int y, const char *what) {
        if (x < 0 || x >= width_ || y < 0 || y >= height_)
            fatal(strcat("fault plan ", what, " targets PE (", x, ", ", y,
                         ") outside the ", width_, "x", height_, " grid"));
    };
    for (const PeHaltFault &h : plan.peHalts) {
        checkPe(h.x, h.y, "halt");
        Pe &target = pe(h.x, h.y);
        // Multiple halts on one PE: the earliest threshold wins.
        target.setHaltAt(std::min(h.at, target.haltAt()));
    }
    for (const PeStutterFault &s : plan.peStutters) {
        checkPe(s.x, s.y, "stutter");
        if (s.factor < 1)
            fatal("fault plan stutter factor must be >= 1");
        pe(s.x, s.y).setStutter(s.from, s.until, s.factor);
    }
    fabric_->applyFaultPlan(plan);
}

Simulator::~Simulator()
{
    // Queued callbacks may hold PayloadRefs into *other* shards' pools
    // (cross-shard segments, stashed deliveries): drop every queued
    // callback while all pools are still alive.
    for (auto &shard : shards_) {
        shard->heap_.clear();
        shard->slots_.clear();
        shard->freeSlots_.clear();
        for (auto &lane : shard->outbox_)
            lane.clear();
    }
}

Pe &
Simulator::pe(int x, int y)
{
    WSC_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
               "PE coordinates (" << x << ", " << y << ") out of range");
    return *pes_[peIndex(x, y)];
}

Shard &
Simulator::shardOfPe(uint32_t peIdx)
{
    if (peIdx >= numPes_) // host
        return *shards_.front();
    uint32_t col = peIdx / static_cast<uint32_t>(height_);
    uint32_t row = peIdx % static_cast<uint32_t>(height_);
    int shard = tileOfRow_[row] * shardCols_ + tileOfCol_[col];
    return *shards_[static_cast<size_t>(shard)];
}

const SimStats &
Simulator::stats()
{
    mergedStats_ = SimStats{};
    for (const auto &shard : shards_) {
        mergedStats_.eventsProcessed += shard->stats_.eventsProcessed;
        mergedStats_.waveletsSent += shard->stats_.waveletsSent;
        mergedStats_.taskActivations += shard->stats_.taskActivations;
        mergedStats_.dsdOps += shard->stats_.dsdOps;
        mergedStats_.flops += shard->stats_.flops;
        mergedStats_.memBytes += shard->stats_.memBytes;
    }
    return mergedStats_;
}

ShardingTelemetry
Simulator::telemetry() const
{
    ShardingTelemetry t;
    t.windows = windowCount_;
    t.windowCycles = windowCycleSum_;
    t.shardWindowsRun = shardWindowsRun_.load(std::memory_order_relaxed);
    t.steals = stealCount_.load(std::memory_order_relaxed);
    for (const auto &shard : shards_)
        t.outboxReallocs += shard->outboxReallocs_;
    return t;
}

uint64_t
Simulator::fabricHops() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->fabricHops_;
    return total;
}

Cycles
Simulator::now() const
{
    if (tlsCur.sim == this && tlsCur.shard)
        return tlsCur.shard->now();
    return finalNow_;
}

Shard *
Simulator::currentShard() const
{
    return tlsCur.sim == this ? tlsCur.shard : nullptr;
}

void
Simulator::schedule(Cycles at, EventCallback fn)
{
    if (tlsCur.sim == this && tlsCur.shard) {
        Shard &cur = *tlsCur.shard;
        // Generic events stay on the scheduling shard, owned by the
        // creating event's owner (FIFO per creator at equal cycles).
        cur.push(cur.currentOwner_, at, std::move(fn));
        return;
    }
    shards_.front()->push(hostId(), at, std::move(fn));
}

void
Simulator::scheduleOnPe(uint32_t owner, Cycles at, EventCallback fn,
                        Shard *from)
{
    Shard &target = shardOfPe(owner);
    if (from == nullptr) {
        target.pushKeyed(Shard::packKey(owner, hostId()),
                         shards_.front()->nextSeq_++, at, std::move(fn));
        return;
    }
    uint64_t key = Shard::packKey(owner, from->currentOwner_);
    if (from == &target) {
        target.pushKeyed(key, from->nextSeq_++, at, std::move(fn));
        return;
    }
    auto &lane = from->outbox_[static_cast<size_t>(target.index())];
    // Lanes are cleared (capacity kept) when drained, so growth only
    // happens while a lane reaches its high-water mark — telemetry
    // asserts steady-state windows stay allocation-free.
    if (lane.size() == lane.capacity())
        from->outboxReallocs_++;
    lane.push_back(Shard::MailEntry{at, key, from->nextSeq_++,
                                    std::move(fn)});
}

bool
Simulator::idle() const
{
    for (const auto &shard : shards_) {
        if (!shard->heap_.empty())
            return false;
        for (const auto &lane : shard->outbox_)
            if (!lane.empty())
                return false;
    }
    return true;
}

Cycles
Simulator::finishRun()
{
    Cycles end = finalNow_;
    for (auto &shard : shards_)
        end = std::max(end, shard->now_);
    for (auto &shard : shards_) {
        shard->now_ = end;
        shard->currentOwner_ = hostId();
    }
    finalNow_ = end;
    return end;
}

bool
Simulator::runSequential(uint64_t maxEvents)
{
    Shard &shard = *shards_.front();
    shard.processed_ = 0;
    TlsGuard tls(this, &shard);
    bool overBudget = false;
    while (!shard.heap_.empty()) {
        if (shard.processed_ >= maxEvents) {
            overBudget = true; // Diagnosed by runWithReport.
            break;
        }
        shard.step();
    }
    shard.currentOwner_ = hostId();
    return overBudget;
}

void
Simulator::runAssignedShards(int w, Cycles windowEnd, uint64_t maxEvents)
{
    auto runShard = [&](uint32_t s) {
        Shard &shard = *shards_[s];
        // The claim flag makes this worker the shard's exclusive
        // executor for the window; the TLS context travels with the
        // shard so schedule sites see the right creator/outbox.
        TlsGuard tls(this, &shard);
        shardWindowsRun_.fetch_add(1, std::memory_order_relaxed);
        shard.runWindow(windowEnd, maxEvents);
    };
    // Own affinity queue first (front to back), then sweep the other
    // workers' queues back to front — stealing the work its home worker
    // would reach last. The claim flag arbitrates: whoever wins the
    // exchange runs the shard-window, everyone else moves on.
    for (uint32_t s : workerQueues_[static_cast<size_t>(w)])
        if (claimShard(s))
            runShard(s);
    if (!options_.workStealing)
        return;
    for (int v = 1; v < numWorkers_; ++v) {
        const auto &q =
            workerQueues_[static_cast<size_t>((w + v) % numWorkers_)];
        for (auto it = q.rbegin(); it != q.rend(); ++it)
            if (claimShard(*it)) {
                stealCount_.fetch_add(1, std::memory_order_relaxed);
                runShard(*it);
            }
    }
}

bool
Simulator::runParallel(uint64_t maxEvents)
{
    for (auto &shard : shards_)
        shard->processed_ = 0;
    const bool adaptive = options_.adaptiveWindow;

    struct Control
    {
        Cycles windowEnd = 0;
        bool done = false;
        bool overBudget = false;
    } ctl;
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    // Runs on exactly one thread while every worker is parked in the
    // barrier: drains the cross-shard mailboxes, accounts the event
    // budget, picks the next conservative window and deals the active
    // shards onto the workers' claim queues. The body must not leak an
    // exception (std::terminate inside a barrier completion), so a
    // throwing drain — e.g. a schedule-into-the-past panic — is
    // converted into the same firstError/done shutdown a throwing
    // worker takes.
    auto atBarrier = [&]() noexcept {
        try {
            if (failed.load(std::memory_order_relaxed)) {
                ctl.done = true;
                return;
            }
            uint64_t total = 0;
            for (auto &src : shards_) {
                for (size_t dst = 0; dst < src->outbox_.size(); ++dst) {
                    auto &lane = src->outbox_[dst];
                    for (auto &entry : lane)
                        shards_[dst]->pushKeyed(entry.ownerCreator,
                                                entry.seq, entry.at,
                                                std::move(entry.cb));
                    lane.clear();
                }
                total += src->processed_;
            }
            bool any = false;
            Cycles minAt = 0;
            for (auto &shard : shards_) {
                if (shard->heap_.empty())
                    continue;
                Cycles at = shard->heap_.front().at;
                minAt = any ? std::min(minAt, at) : at;
                any = true;
            }
            if (!any) {
                ctl.done = true;
                return;
            }
            if (total >= maxEvents) {
                // Budget spent with events still queued: stop so the
                // caller can produce the diagnosis.
                ctl.overBudget = true;
                ctl.done = true;
                return;
            }
            Cycles end = minAt + lookahead_;
            if (adaptive) {
                // Largest safe window: no tracked pending event can
                // influence a foreign shard before its constraint
                // bound, and untracked events (beyond the horizon) not
                // before minAt + maxWindowLat_. Every event executed in
                // [minAt, end) therefore commits before its effects can
                // cross a boundary — the full argument lives in
                // docs/architecture.md §4.
                end = minAt + maxWindowLat_;
                for (auto &shard : shards_) {
                    shard->purgeConstraints(ctl.windowEnd);
                    end = std::min(end, shard->constraintBound());
                }
                // Progress is provable (every live bound is >= minAt +
                // lookahead); the max is a cheap belt against future
                // constraint sources breaking that proof silently.
                end = std::max(end, minAt + lookahead_);
            }
            ctl.windowEnd = end;
            windowCount_++;
            windowCycleSum_ += end - minAt;
            // Deal active shards onto the workers' claim queues,
            // round-robin by home worker for affinity.
            for (auto &q : workerQueues_)
                q.clear();
            for (uint32_t s = 0; s < shards_.size(); ++s) {
                Shard &shard = *shards_[s];
                if (shard.heap_.empty() || shard.heap_.front().at >= end)
                    continue; // Idle this window; nobody touches it.
                claimed_[s].store(false, std::memory_order_relaxed);
                workerQueues_[s % static_cast<uint32_t>(numWorkers_)]
                    .push_back(s);
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
            failed.store(true, std::memory_order_relaxed);
            ctl.done = true;
        }
    };

    std::barrier barrier(numWorkers_, atBarrier);

    // Error-path invariant: a worker that catches an exception KEEPS
    // LOOPING to the next arrive_and_wait instead of leaving the loop —
    // breaking out without arriving would strand the siblings in the
    // barrier forever. The completion step then observes `failed` and
    // shuts every worker down through ctl.done.
    auto worker = [&](int idx) {
        for (;;) {
            barrier.arrive_and_wait();
            if (ctl.done)
                break;
            try {
                runAssignedShards(idx, ctl.windowEnd, maxEvents);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                }
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(numWorkers_) - 1);
    for (int i = 1; i < numWorkers_; ++i)
        threads.emplace_back(worker, i);
    worker(0);
    for (std::thread &t : threads)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return ctl.overBudget;
}

void
Simulator::addQuiescenceProbe(QuiescenceProbe probe)
{
    probes_.push_back(std::move(probe));
}

void
Simulator::noteDegradedPe(uint32_t peId)
{
    shardOfPe(peId).degradedPes_.push_back(peId);
}

void
Simulator::collectBlockedPes(std::vector<BlockedPeInfo> &out)
{
    for (const QuiescenceProbe &probe : probes_)
        probe(out);
    for (BlockedPeInfo &b : out)
        b.peHalted = pes_[peIndex(b.x, b.y)]->haltedAt(finalNow_);
    // Oldest blockage first; ties broken by grid position so the dump
    // is stable across probe registration order.
    std::sort(out.begin(), out.end(),
              [](const BlockedPeInfo &a, const BlockedPeInfo &b) {
                  if (a.since != b.since)
                      return a.since < b.since;
                  if (a.x != b.x)
                      return a.x < b.x;
                  if (a.y != b.y)
                      return a.y < b.y;
                  return a.what < b.what;
              });
}

SimDiagnosis
Simulator::diagnose(SimOutcome outcome, uint64_t budget,
                    std::vector<BlockedPeInfo> blocked)
{
    const size_t maxRows =
        static_cast<size_t>(envU64("WSC_DIAG_ROWS", 16));
    SimDiagnosis d;
    d.outcome = outcome;
    d.atCycle = finalNow_;
    d.eventBudget = budget == UINT64_MAX ? 0 : budget;

    for (const auto &shard : shards_) {
        d.eventsProcessed += shard->processed_;
        ShardQueueInfo q;
        q.shard = shard->index();
        q.depth = shard->heap_.size();
        q.nextAt = q.depth > 0 ? shard->heap_.front().at : 0;
        for (const auto &lane : shard->outbox_)
            q.outboxPending += lane.size();
        d.queues.push_back(q);
    }

    d.blockedPeTotal = blocked.size();
    if (blocked.size() > maxRows)
        blocked.resize(maxRows);
    d.blockedPes = std::move(blocked);

    for (const auto &pe : pes_) {
        const auto &pending = pe->pendingActivations();
        if (pending.empty())
            continue;
        d.pendingTaskTotal += pending.size();
        if (d.pendingTasks.size() < maxRows) {
            const auto &[taskIdx, readyAt] = pending.front();
            d.pendingTasks.push_back(
                {pe->x(), pe->y(), pe->taskName(taskIdx), readyAt,
                 pending.size() - 1, pe->haltedAt(finalNow_)});
        }
    }

    // Busiest PEs by events still owned in the queues/outboxes.
    std::unordered_map<uint32_t, size_t> ownerCounts;
    for (const auto &shard : shards_) {
        for (const Shard::EventKey &key : shard->heap_)
            ownerCounts[static_cast<uint32_t>(key.ownerCreator >> 32)]++;
        for (const auto &lane : shard->outbox_)
            for (const Shard::MailEntry &entry : lane)
                ownerCounts[static_cast<uint32_t>(entry.ownerCreator >>
                                                  32)]++;
    }
    std::vector<std::pair<uint32_t, size_t>> owners;
    for (const auto &[owner, count] : ownerCounts)
        if (owner < numPes_)
            owners.emplace_back(owner, count);
    std::sort(owners.begin(), owners.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (owners.size() > maxRows)
        owners.resize(maxRows);
    for (const auto &[owner, count] : owners)
        d.busiestPes.push_back({pes_[owner]->x(), pes_[owner]->y(),
                                count});

    fabric_->collectBusyLinks(finalNow_, maxRows, d.busyLinks);
    return d;
}

const SimReport &
Simulator::runWithReport(uint64_t maxEvents)
{
    report_ = SimReport{};
    windowCount_ = 0;
    windowCycleSum_ = 0;
    shardWindowsRun_.store(0, std::memory_order_relaxed);
    stealCount_.store(0, std::memory_order_relaxed);
    for (auto &shard : shards_)
        shard->outboxReallocs_ = 0;
    bool overBudget = shardCount() == 1 ? runSequential(maxEvents)
                                        : runParallel(maxEvents);
    report_.finalCycle = finishRun();
    report_.stats = stats();

    for (const auto &shard : shards_) {
        const FaultStats &f = shard->faultStats_;
        report_.faults.streamsDroppedByLinks += f.streamsDroppedByLinks;
        report_.faults.payloadsDropped += f.payloadsDropped;
        report_.faults.payloadsCorrupted += f.payloadsCorrupted;
        report_.faults.exchangeTimeouts += f.exchangeTimeouts;
        report_.faults.exchangesDegraded += f.exchangesDegraded;
        report_.degradedPes.insert(report_.degradedPes.end(),
                                   shard->degradedPes_.begin(),
                                   shard->degradedPes_.end());
    }
    std::sort(report_.degradedPes.begin(), report_.degradedPes.end());
    report_.degradedPes.erase(std::unique(report_.degradedPes.begin(),
                                          report_.degradedPes.end()),
                              report_.degradedPes.end());

    for (const PeHaltFault &h : options_.faults.peHalts)
        if (h.at <= report_.finalCycle)
            report_.haltedPes.push_back(peIndex(h.x, h.y));
    std::sort(report_.haltedPes.begin(), report_.haltedPes.end());
    report_.haltedPes.erase(std::unique(report_.haltedPes.begin(),
                                        report_.haltedPes.end()),
                            report_.haltedPes.end());
    report_.faults.pesHalted = report_.haltedPes.size();

    if (overBudget) {
        report_.outcome = SimOutcome::EventBudgetExceeded;
        std::vector<BlockedPeInfo> blocked;
        collectBlockedPes(blocked);
        report_.diagnosis =
            diagnose(report_.outcome, maxEvents, std::move(blocked));
        return report_;
    }

    // The queues are drained: ask the quiescence probes whether any PE
    // still owes work. Obligations on halted PEs are the expected shape
    // of the injected fault (Degraded); anything on a live PE means the
    // run can never progress again (Deadlock).
    std::vector<BlockedPeInfo> blocked;
    collectBlockedPes(blocked);
    bool liveBlocked = false;
    for (const BlockedPeInfo &b : blocked)
        liveBlocked |= !b.peHalted;
    if (!liveBlocked)
        for (const auto &pe : pes_)
            if (!pe->pendingActivations().empty() &&
                !pe->haltedAt(report_.finalCycle))
                liveBlocked = true;

    if (liveBlocked)
        report_.outcome = SimOutcome::Deadlock;
    else if (!report_.haltedPes.empty() || !report_.degradedPes.empty())
        report_.outcome = SimOutcome::Degraded;
    else
        report_.outcome = SimOutcome::Completed;

    if (report_.outcome != SimOutcome::Completed)
        report_.diagnosis =
            diagnose(report_.outcome, maxEvents, std::move(blocked));
    return report_;
}

Cycles
Simulator::run(uint64_t maxEvents)
{
    const SimReport &r = runWithReport(maxEvents);
    if (r.outcome == SimOutcome::EventBudgetExceeded)
        fatal(strcat("simulation exceeded the event budget (livelock?)\n",
                     r.diagnosis.toString()));
    return r.finalCycle;
}

} // namespace wsc::wse
