#include "wse/arch_params.h"

namespace wsc::wse {

double
ArchParams::peakFlops()
    const
{
    // One FP32 FMA per cycle per PE.
    return static_cast<double>(numPes()) * 2.0 * clockGHz * 1e9 *
           f32ElemsPerCycle;
}

double
ArchParams::memoryBandwidth() const
{
    return static_cast<double>(numPes()) *
           (readBytesPerCycle + writeBytesPerCycle) * clockGHz * 1e9;
}

double
ArchParams::fabricBandwidth() const
{
    return static_cast<double>(numPes()) * waveletBytes *
           linkWaveletsPerCycle * clockGHz * 1e9;
}

ArchParams
ArchParams::wse2()
{
    ArchParams p;
    p.name = "WSE2";
    // The paper's large problem (750x994) fully occupies the WSE2 grid.
    p.fabricWidth = 750;
    p.fabricHeight = 994;
    p.clockGHz = 0.80;
    p.switchRequiresSelfTransmit = true;
    p.switchReconfigCycles = 60;
    p.taskActivateCycles = 18;
    return p;
}

ArchParams
ArchParams::wse3()
{
    ArchParams p;
    p.name = "WSE3";
    // ~900k usable PEs.
    p.fabricWidth = 750;
    p.fabricHeight = 1200;
    p.clockGHz = 0.95;
    p.switchRequiresSelfTransmit = false;
    p.switchReconfigCycles = 8;
    p.taskActivateCycles = 15;
    return p;
}

} // namespace wsc::wse
