/**
 * @file
 * Deterministic fault injection and structured run diagnosis for the
 * wafer simulator.
 *
 * A FaultPlan is attached to SimOptions and describes misbehaviour to
 * inject into a run: PEs that halt or stutter at a given cycle, links
 * that fail hard or degrade (per-hop latency inflation), and individual
 * stream payloads that are corrupted or lost in flight. Every fault is
 * keyed off deterministic quantities only — cycle thresholds, per-link
 * injection ordinals, and a seeded mixing function — never off thread
 * interleaving, so a faulty `threads = N` run is bit-identical to the
 * faulty `threads = 1` run (pinned by `ctest -L faults`).
 *
 * On the detection side, SimDiagnosis is the structured replacement for
 * the old one-line "event budget exceeded" fatal: per-shard queue
 * depths, per-PE pending-task tables, the oldest blocked activations
 * reported by quiescence probes, the busiest PEs and the links still
 * reserved into the future. SimReport (wse/simulator.h) packages the
 * outcome of a run (completed / degraded / deadlock / budget-exceeded)
 * with the merged statistics and fault counters so callers — tests,
 * benches, a future compile service — observe fault outcomes
 * programmatically instead of crashing or hanging.
 */

#ifndef WSC_WSE_FAULT_H
#define WSC_WSE_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "wse/fabric.h"

namespace wsc::wse {

/** Cycle value meaning "never" in fault thresholds. */
inline constexpr Cycles kNeverCycle = ~static_cast<Cycles>(0);

/** Permanently halt the compute element of PE (x, y) at cycle `at`.
 *  The PE's router keeps forwarding (on real hardware the fabric router
 *  is independent of the CE), but no further task dispatches happen:
 *  pending activations accumulate and show up in the diagnosis. */
struct PeHaltFault
{
    int x = 0;
    int y = 0;
    Cycles at = 0;
};

/** Multiply all work-timeline reservations of PE (x, y) by `factor`
 *  for reservations starting in [from, until). */
struct PeStutterFault
{
    int x = 0;
    int y = 0;
    Cycles from = 0;
    Cycles until = kNeverCycle;
    uint32_t factor = 2;
};

enum class LinkFaultKind : uint8_t
{
    /** The link carries nothing from `at` on: streams reaching it are
     *  dropped (deliveries before the dead hop still happen). */
    Drop,
    /** Every hop across the link takes `extraHopCycles` longer. */
    Degrade,
};

/** Fault on the outgoing link of PE (x, y) towards `dir`. */
struct LinkFault
{
    int x = 0;
    int y = 0;
    Direction dir = Direction::East;
    Cycles at = 0;
    LinkFaultKind kind = LinkFaultKind::Drop;
    Cycles extraHopCycles = 0;
};

enum class PayloadFaultKind : uint8_t
{
    /** One element of the payload is overwritten with a seeded garbage
     *  value before injection (only the faulted link's stream sees it:
     *  shared chunk slots are copied before corruption). */
    Corrupt,
    /** The stream's wavelets vanish after the first hop. */
    Drop,
};

/** Fault on the `nthStream`-th stream (0-based injection ordinal)
 *  injected on the outgoing link of PE (x, y) towards `dir`. The
 *  ordinal is counted on the link owner's shard, so selection is
 *  independent of the thread count and of the shard tiling. */
struct PayloadFault
{
    int x = 0;
    int y = 0;
    Direction dir = Direction::East;
    uint64_t nthStream = 0;
    PayloadFaultKind kind = PayloadFaultKind::Corrupt;
};

/** A seeded, deterministic schedule of faults for one run. */
struct FaultPlan
{
    /** Mixed into corruption element/value selection. */
    uint64_t seed = 0;
    std::vector<PeHaltFault> peHalts;
    std::vector<PeStutterFault> peStutters;
    std::vector<LinkFault> linkFaults;
    std::vector<PayloadFault> payloadFaults;

    /// @name Fluent builders
    /// @{
    FaultPlan &haltPe(int x, int y, Cycles at);
    FaultPlan &stutterPe(int x, int y, Cycles from, Cycles until,
                         uint32_t factor);
    FaultPlan &dropLink(int x, int y, Direction dir, Cycles at);
    FaultPlan &degradeLink(int x, int y, Direction dir, Cycles at,
                           Cycles extraHopCycles);
    FaultPlan &corruptPayload(int x, int y, Direction dir, uint64_t nth);
    FaultPlan &dropPayload(int x, int y, Direction dir, uint64_t nth);
    /// @}

    bool
    empty() const
    {
        return peHalts.empty() && peStutters.empty() &&
               linkFaults.empty() && payloadFaults.empty();
    }
};

/** splitmix64: the deterministic mixer behind corruption selection. */
uint64_t faultMix(uint64_t v);

/** Finite (never NaN/inf) garbage float derived from (seed, salt). */
float faultCorruptionValue(uint64_t seed, uint64_t salt);

/** Counters of injected faults and their consequences (merged across
 *  shards on report, like SimStats). */
struct FaultStats
{
    /** PEs whose halt threshold lies within the finished run. */
    uint64_t pesHalted = 0;
    /** Streams killed by a dead link (injection- or mid-path). */
    uint64_t streamsDroppedByLinks = 0;
    /** Streams killed by a targeted payload-loss fault. */
    uint64_t payloadsDropped = 0;
    /** Streams whose payload was corrupted before injection. */
    uint64_t payloadsCorrupted = 0;
    /** Exchange-timeout checks that found an incomplete exchange
     *  (each either re-arms with backoff or degrades). */
    uint64_t exchangeTimeouts = 0;
    /** Exchanges abandoned after the retry budget: missing sections
     *  zero-filled and the owning PE marked degraded. */
    uint64_t exchangesDegraded = 0;

    bool operator==(const FaultStats &) const = default;
};

/** How a simulation run ended. */
enum class SimOutcome : uint8_t
{
    /** Queues drained with no outstanding obligations anywhere. */
    Completed,
    /** Queues drained; faulted PEs left partial results behind
     *  (halted or timeout-degraded PEs), everything else finished. */
    Degraded,
    /** Queues drained but a non-halted PE still has pending tasks or a
     *  blocked exchange: the run can never make progress again. */
    Deadlock,
    /** The event budget was exhausted with events still queued
     *  (livelock or a genuinely under-budgeted run). */
    EventBudgetExceeded,
};

const char *simOutcomeName(SimOutcome outcome);

/** One shard's queue state at diagnosis time. */
struct ShardQueueInfo
{
    int shard = 0;
    size_t depth = 0;
    /** Cycle of the next queued event (meaningful when depth > 0). */
    Cycles nextAt = 0;
    /** Cross-shard outbox entries not yet drained. */
    size_t outboxPending = 0;
};

/** One undispatched task activation sitting on a PE. */
struct PendingTaskInfo
{
    int x = 0;
    int y = 0;
    std::string task;
    Cycles readyAt = 0;
    /** Further activations queued behind this one on the same PE. */
    size_t queuedBehind = 0;
    /** Whether the PE was halted by the fault plan (expected-dead). */
    bool peHalted = false;
};

/**
 * One blocked obligation reported by a quiescence probe (e.g. a
 * StarComm exchange still waiting for sections, or a PE whose program
 * never returned control to the host).
 */
struct BlockedPeInfo
{
    int x = 0;
    int y = 0;
    /** Human-readable description of what the PE is waiting for. */
    std::string what;
    /** Cycle since which the PE has been blocked. */
    Cycles since = 0;
    /** Filled by the simulator after collection. */
    bool peHalted = false;
};

/** A PE ranked by how many events it still owns in the queues. */
struct BusyPeInfo
{
    int x = 0;
    int y = 0;
    size_t queuedEvents = 0;
};

/** A link still reserved past the diagnosis cycle (in-flight tail). */
struct BusyLinkInfo
{
    int x = 0;
    int y = 0;
    Direction dir = Direction::East;
    Cycles busyUntil = 0;
};

/**
 * Structured post-mortem of a run that did not complete cleanly,
 * produced by the quiescence watchdog instead of a one-line fatal.
 * Row lists are bounded samples (WSC_DIAG_ROWS, default 16); the
 * `*Total` counters carry the full population sizes.
 */
struct SimDiagnosis
{
    SimOutcome outcome = SimOutcome::Completed;
    Cycles atCycle = 0;
    uint64_t eventsProcessed = 0;
    /** The budget that was exceeded (EventBudgetExceeded only). */
    uint64_t eventBudget = 0;
    std::vector<ShardQueueInfo> queues;
    std::vector<PendingTaskInfo> pendingTasks;
    size_t pendingTaskTotal = 0;
    /** Oldest blocked first. */
    std::vector<BlockedPeInfo> blockedPes;
    size_t blockedPeTotal = 0;
    std::vector<BusyPeInfo> busiestPes;
    std::vector<BusyLinkInfo> busyLinks;

    /** Multi-line human-readable dump (fatal messages, logs). */
    std::string toString() const;
};

} // namespace wsc::wse

#endif // WSC_WSE_FAULT_H
