/**
 * The 25-point seismic kernel (Jacquelin et al.): generated code vs the
 * hand-written baseline on the WSE2 — the Figure 5 comparison as a
 * runnable example, including the mechanisms behind the generated
 * code's edge.
 *
 * Build & run:  ./build/example_seismic_25pt
 */

#include <cmath>
#include <cstdio>

#include "baselines/handwritten_seismic.h"
#include "dialects/all.h"
#include "frontends/benchmarks.h"
#include "interp/csl_interpreter.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

int
main()
{
    const int N = 13;
    const int64_t NZ = 192;
    const int64_t STEPS = 12;

    // --- generated ---
    fe::Benchmark bench = fe::makeSeismic(N, N, STEPS, NZ);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result) {
        fprintf(stderr, "%s\n", result.str().c_str());
        return 1;
    }

    wse::Simulator sim(wse::ArchParams::wse2(), N, N);
    interp::CslProgramInstance generated(sim, module.get());
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        generated.setFieldInit(bench.program.fieldName(f),
                               [init, fi](int x, int y, int z) {
                                   return init(fi, x, y, z);
                               });
    }
    generated.configure();
    generated.launch();
    sim.run();
    const std::vector<wse::Cycles> &genMarks =
        generated.stepMarks(N / 2, N / 2);
    double genPerStep =
        static_cast<double>(genMarks.back() - genMarks[3]) /
        static_cast<double>(genMarks.size() - 4);
    uint64_t genTasks = sim.pe(N / 2, N / 2).taskActivations();

    // --- hand-written ---
    wse::Simulator hwSim(wse::ArchParams::wse2(), N, N);
    baselines::HandwrittenSeismicConfig config;
    config.nz = NZ;
    config.timesteps = STEPS;
    baselines::HandwrittenSeismic handwritten(hwSim, config);
    handwritten.setInit(bench.init);
    handwritten.configure();
    handwritten.launch();
    hwSim.run();
    const std::vector<wse::Cycles> &hwMarks =
        handwritten.stepMarks(N / 2, N / 2);
    double hwPerStep =
        static_cast<double>(hwMarks.back() - hwMarks[3]) /
        static_cast<double>(hwMarks.size() - 4);
    uint64_t hwTasks = hwSim.pe(N / 2, N / 2).taskActivations();

    printf("25-point seismic on WSE2, %dx%d PEs, z=%lld, %lld steps\n",
           N, N, static_cast<long long>(NZ),
           static_cast<long long>(STEPS));
    printf("%-26s %14s %16s\n", "", "generated", "hand-written");
    printf("%-26s %14.0f %16.0f\n", "cycles/step", genPerStep,
           hwPerStep);
    printf("%-26s %14.2f %16.2f\n", "task activations/step",
           static_cast<double>(genTasks) / STEPS,
           static_cast<double>(hwTasks) / STEPS);
    printf("%-26s %14s %16s\n", "column trimming", "yes (r=4)", "no");
    printf("%-26s %14s %16s\n", "chunks", "1", "2");
    printf("speedup of generated code: %.3fx\n",
           hwPerStep / genPerStep);

    // The two implementations also agree numerically.
    double maxDiff = 0;
    for (int x = 0; x < N; ++x)
        for (int y = 0; y < N; ++y) {
            std::vector<float> a = generated.readFieldColumn("p", x, y);
            std::vector<float> b = handwritten.readP(x, y);
            for (size_t z = 0; z < a.size(); ++z)
                maxDiff = std::max(
                    maxDiff, static_cast<double>(std::abs(a[z] - b[z])));
        }
    printf("max |generated - hand-written| = %.3g (%s)\n", maxDiff,
           maxDiff < 1e-4 ? "agree" : "MISMATCH");
    return maxDiff < 1e-4 ? 0 : 1;
}
