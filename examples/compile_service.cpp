/**
 * The compile service front door: a worker pool compiles (and
 * optionally simulates) many requests concurrently, recycling one
 * ir::Context per worker and deduplicating repeat requests through the
 * content-addressed artifact cache. Demonstrates the three request
 * outcomes — cold miss, cache hit, failed job with rendered
 * diagnostics — and prints the service counters.
 *
 * Build & run:  ./build/example_compile_service
 */

#include <cstdio>
#include <future>
#include <vector>

#include "service/compile_service.h"
#include "service/workload_requests.h"

using namespace wsc;

int
main()
{
    service::ServiceConfig config;
    config.threads = 4;
    service::CompileService svc(config);

    // --- Round 1: five workloads, all cold misses ----------------------
    printf("--- round 1: cold compiles ---\n");
    std::vector<service::CompileRequest> workloads =
        service::allWorkloadRequests(8, 8, 2);
    std::vector<std::future<service::CompileReply>> inflight;
    for (const service::CompileRequest &request : workloads)
        inflight.push_back(svc.submit(request));
    for (std::future<service::CompileReply> &f : inflight) {
        service::CompileReply reply = f.get();
        printf("  %-10s %s  key=%016llx%016llx  %.1f ms\n",
               reply.name.c_str(), reply.cacheHit ? "hit " : "miss",
               static_cast<unsigned long long>(reply.key.hi),
               static_cast<unsigned long long>(reply.key.lo),
               reply.workMicros / 1000.0);
    }

    // --- Round 2: identical requests, all served from the cache -------
    printf("--- round 2: cache hits ---\n");
    for (const service::CompileRequest &request : workloads) {
        service::CompileReply reply = svc.compile(request);
        printf("  %-10s %s  pe.csl %zu bytes\n", reply.name.c_str(),
               reply.cacheHit ? "hit " : "miss",
               reply.artifact->csl.programFile.size());
    }

    // --- A malformed request fails its own job, nothing else ----------
    printf("--- malformed request ---\n");
    service::CompileRequest bad;
    bad.name = "diagonal";
    bad.build = [](ir::Context &c) {
        fe::Program p(fe::Grid{8, 8, 16});
        p.setTimesteps(2);
        fe::Field u = p.addField("u");
        p.setUpdate(u, u.at(1, 1, 0)); // diagonal: not box-shaped
        return p.emit(c);
    };
    service::CompileReply failed = svc.compile(std::move(bad));
    printf("  ok=%d failedPass=%s\n", failed.ok ? 1 : 0,
           failed.pipeline.failedPass.c_str());
    if (const ir::Diagnostic *err = failed.pipeline.firstError())
        printf("  %s\n", err->str().c_str());

    // The worker that ran the failure is already serving hits again.
    service::CompileReply after = svc.compile(workloads[0]);
    printf("  next job on the pool: ok=%d hit=%d\n", after.ok ? 1 : 0,
           after.cacheHit ? 1 : 0);

    // --- Counters ------------------------------------------------------
    service::ServiceStats stats = svc.stats();
    printf("--- stats ---\n");
    printf("  submitted %llu, succeeded %llu, failed %llu\n",
           static_cast<unsigned long long>(stats.submitted),
           static_cast<unsigned long long>(stats.succeeded),
           static_cast<unsigned long long>(stats.failed));
    printf("  cache: %llu hits, %llu misses, %llu insertions\n",
           static_cast<unsigned long long>(stats.cache.hits),
           static_cast<unsigned long long>(stats.cache.misses),
           static_cast<unsigned long long>(stats.cache.insertions));
    printf("  contexts: %llu created, %llu recycled\n",
           static_cast<unsigned long long>(stats.contextsCreated),
           static_cast<unsigned long long>(stats.contextsRecycled));
    return 0;
}
