/**
 * Heat diffusion through the Devito-like frontend: demonstrates the
 * chunked exchange policy (receive-buffer budget), coefficient
 * promotion, and per-PE memory accounting on both WSE generations.
 *
 * Build & run:  ./build/example_heat_diffusion
 */

#include <cstdio>

#include "dialects/all.h"
#include "frontends/benchmarks.h"
#include "interp/csl_interpreter.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

namespace {

void
runOn(const wse::ArchParams &arch, const fe::Benchmark &bench,
      ir::Operation *module)
{
    wse::Simulator sim(arch, 10, 10);
    interp::CslProgramInstance instance(sim, module);
    auto init = bench.init;
    instance.setFieldInit("u", [init](int x, int y, int z) {
        return init(0, x, y, z);
    });
    instance.configure();
    instance.launch();
    sim.run();
    const std::vector<wse::Cycles> &marks = instance.stepMarks(5, 5);
    double perStep =
        static_cast<double>(marks.back() - marks[2]) /
        static_cast<double>(marks.size() - 3);
    printf("  %-5s: %8.0f cycles/step, %6.2f us/step @ %.2f GHz, "
           "%zu B/PE\n",
           arch.name.c_str(), perStep,
           perStep / (arch.clockGHz * 1e3), arch.clockGHz,
           instance.memoryBytesUsed(5, 5));
}

} // namespace

int
main()
{
    printf("Heat diffusion (13-point star, r=2) on 10x10 PEs, z=704\n");
    printf("--- Devito source the scientist writes ---\n");
    fe::Benchmark bench = fe::makeDiffusion(10, 10, 12);
    printf("%s\n", bench.dslSource.c_str());

    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result) {
        fprintf(stderr, "%s\n", result.str().c_str());
        return 1;
    }

    // The compiler's chunking decision for the real column length.
    ir::Operation *comms = nullptr;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == dialects::csl::kCommsExchange)
            comms = op;
    });
    auto spec = dialects::csl::commsExchangeSpec(comms);
    printf("--- compiler decisions ---\n");
    printf("  remote accesses: %zu  pattern radius: %lld  chunks: %lld "
           " trims: %lld/%lld\n",
           spec.accesses.size(), static_cast<long long>(spec.pattern),
           static_cast<long long>(spec.numChunks),
           static_cast<long long>(spec.trimFirst),
           static_cast<long long>(spec.trimLast));
    printf("  promoted coefficients: %s\n",
           spec.coeffs.empty() ? "no" : "yes");

    printf("--- simulated per-step cost ---\n");
    runOn(wse::ArchParams::wse2(), bench, module.get());
    runOn(wse::ArchParams::wse3(), bench, module.get());
    return 0;
}
