/**
 * Quickstart: express a stencil, lower it through the full pipeline,
 * look at the generated CSL, and run it on a simulated WSE3 — the
 * complete zero-to-results tour of the public API.
 *
 * Build & run:  ./build/example_quickstart
 */

#include <cstdio>

#include "codegen/csl_emitter.h"
#include "dialects/all.h"
#include "frontends/sym.h"
#include "interp/csl_interpreter.h"
#include "ir/printer.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

int
main()
{
    // 1. Express the stencil in the Devito-like symbolic frontend: a
    //    four-neighbour average run for 10 timesteps on an 8x8 grid of
    //    PEs, each holding a 32-element z-column.
    fe::Program program(fe::Grid{8, 8, 32});
    program.setTimesteps(10);
    fe::Field u = program.addField("u");
    program.setUpdate(u, fe::constant(0.25) *
                             (u.at(1, 0, 0) + u.at(-1, 0, 0) +
                              u.at(0, 1, 0) + u.at(0, -1, 0)));

    // 2. Emit the stencil dialect and run the WSE lowering pipeline.
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = program.emit(ctx);
    printf("=== stencil dialect (input) ===\n%s\n",
           ir::printOp(module.get()).c_str());

    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result) {
        fprintf(stderr, "%s\n", result.str().c_str());
        return 1;
    }

    // 3. Print the generated CSL sources.
    codegen::EmittedCsl csl = codegen::emitCsl(module.get());
    printf("=== generated pe.csl (first lines) ===\n");
    printf("%.1200s...\n\n", csl.programFile.c_str());

    // 4. Run the same lowered program on the simulated WSE3.
    wse::Simulator sim(wse::ArchParams::wse3(), 8, 8);
    interp::CslProgramInstance instance(sim, module.get());
    instance.setFieldInit("u", [](int x, int y, int z) {
        return static_cast<float>(x + y) + 0.01f * static_cast<float>(z);
    });
    instance.configure();
    instance.launch();
    sim.run();

    printf("=== simulation ===\n");
    printf("finished at cycle %llu; %llu PEs returned control to the "
           "host\n",
           static_cast<unsigned long long>(sim.now()),
           static_cast<unsigned long long>(instance.unblockCount()));
    std::vector<float> column = instance.readFieldColumn("u", 4, 4);
    printf("u(4,4,0..3) after 10 steps: %.4f %.4f %.4f %.4f\n",
           column[0], column[1], column[2], column[3]);
    printf("per-PE memory in use: %zu bytes (of 48 kB)\n",
           instance.memoryBytesUsed(4, 4));
    return 0;
}
