/**
 * UVKBE through the PSyclone-style Fortran frontend: four fields, two
 * of which are communicated, two consecutive stencil.apply operations
 * chained through their done-exchange callbacks (the paper's
 * continuation-passing structure for programs without a timestep loop).
 *
 * Build & run:  ./build/example_uvkbe_psyclone
 */

#include <cstdio>

#include "codegen/csl_emitter.h"
#include "codegen/loc_counter.h"
#include "dialects/all.h"
#include "frontends/benchmarks.h"
#include "interp/csl_interpreter.h"
#include "model/reference.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

int
main()
{
    fe::Benchmark bench = fe::makeUvkbe(10, 10, 64);
    printf("--- PSyclone-style Fortran kernel ---\n%s\n",
           bench.dslSource.c_str());

    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result) {
        fprintf(stderr, "%s\n", result.str().c_str());
        return 1;
    }

    // Two exchange sites chained by continuations.
    int sites = 0;
    module->walk([&](ir::Operation *op) {
        if (op->opId() == dialects::csl::kCommsExchange) {
            auto spec = dialects::csl::commsExchangeSpec(op);
            printf("exchange %d: %zu sections -> %s then %s\n", sites,
                   spec.accesses.size(), spec.recvCallback.c_str(),
                   spec.doneCallback.c_str());
            sites++;
        }
    });
    printf("(%d consecutive applies; fused by stencil-inlining, split "
           "again\n per buffer communication)\n\n",
           sites);

    wse::Simulator sim(wse::ArchParams::wse3(), 10, 10);
    interp::CslProgramInstance instance(sim, module.get());
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        int fi = static_cast<int>(f);
        auto init = bench.init;
        instance.setFieldInit(bench.program.fieldName(f),
                              [init, fi](int x, int y, int z) {
                                  return init(fi, x, y, z);
                              });
    }
    instance.configure();
    instance.launch();
    sim.run();

    model::ReferenceExecutor ref(bench.program, bench.init);
    ref.run(1);
    double maxErr = 0;
    for (size_t f = 0; f < bench.program.numFields(); ++f) {
        if (bench.program.isIntermediate(f))
            continue; // ke never leaves the PEs
        const std::string &name = bench.program.fieldName(f);
        // Compare the joint interior: the fused kernel computes where
        // *all* fused accesses are in bounds (see EXPERIMENTS.md).
        for (int x = 1; x < 9; ++x)
            for (int y = 1; y < 9; ++y) {
                std::vector<float> col =
                    instance.readFieldColumn(name, x, y);
                for (size_t z = 0; z < col.size(); ++z)
                    maxErr = std::max(
                        maxErr,
                        static_cast<double>(std::abs(
                            col[z] - ref.at(f, x, y,
                                            static_cast<int64_t>(z)))));
            }
    }
    printf("single iteration simulated in %llu cycles; max error vs "
           "reference: %.3g (%s)\n",
           static_cast<unsigned long long>(sim.now()), maxErr,
           maxErr < 1e-4 ? "OK" : "MISMATCH");

    codegen::EmittedCsl csl = codegen::emitCsl(module.get());
    printf("generated CSL kernel: %lld LoC; the Fortran above: %lld "
           "LoC\n",
           static_cast<long long>(codegen::countLoc(csl.programFile)),
           static_cast<long long>(codegen::countLoc(bench.dslSource)));
    return maxErr < 1e-4 ? 0 : 1;
}
