/**
 * Large-grid acoustic scenario: the paper-scale sharded-simulation
 * trajectory (2-D shard tiles, adaptive conservative windows, work
 * stealing). Runs a 96x96-PE acoustic wave kernel — the README scenario
 * table's large-grid row — under several tilings and prints the
 * scheduler telemetry next to the (identical) simulation results.
 *
 * Build & run:  ./build/example_large_grid_acoustic
 * Environment:  WSC_GRID=N      grid edge (default 96)
 *               WSC_STEPS=N     timesteps (default 2)
 *               WSC_Z=N         column depth (default 8)
 */

#include <cstdio>

#include "dialects/all.h"
#include "frontends/benchmarks.h"
#include "interp/csl_interpreter.h"
#include "support/env.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

namespace {

struct Config
{
    const char *label;
    wse::ShardGrid grid;
    int threads;
    bool adaptive;
};

void
runConfig(const Config &cfg, const fe::Benchmark &bench,
          ir::Operation *module, int n)
{
    wse::SimOptions options{cfg.threads};
    options.shardGrid = cfg.grid;
    options.adaptiveWindow = cfg.adaptive;
    wse::Simulator sim(wse::ArchParams::wse3(), n, n, options);
    interp::CslProgramInstance instance(sim, module);
    auto init = bench.init;
    instance.setFieldInit("p", [init](int x, int y, int z) {
        return init(0, x, y, z);
    });
    instance.configure();
    instance.launch();
    wse::Cycles final = sim.run(4000000000ULL);
    wse::ShardingTelemetry t = sim.telemetry();
    printf("  %-24s %2dx%-2d tiles  cycles=%-8llu events=%-10llu "
           "windows=%-8llu avg_window=%-5.1f steals=%llu\n",
           cfg.label, sim.shardRows(), sim.shardCols(),
           static_cast<unsigned long long>(final),
           static_cast<unsigned long long>(sim.stats().eventsProcessed),
           static_cast<unsigned long long>(t.windows),
           t.windows ? static_cast<double>(t.windowCycles) /
                           static_cast<double>(t.windows)
                     : 0.0,
           static_cast<unsigned long long>(t.steals));
}

} // namespace

int
main()
{
    const int n = static_cast<int>(envU64("WSC_GRID", 96));
    const int steps = static_cast<int>(envU64("WSC_STEPS", 2));
    const int z = static_cast<int>(envU64("WSC_Z", 8));
    printf("Acoustic wave (r=2 star) on %dx%d PEs, z=%d, %d steps\n", n,
           n, z, steps);

    fe::Benchmark bench = fe::makeAcoustic(n, n, steps, z);
    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = bench.program.emit(ctx);
    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result) {
        fprintf(stderr, "%s\n", result.str().c_str());
        return 1;
    }

    // Every row simulates the same wafer: cycles and events are
    // bit-identical by the sharded determinism contract — only the
    // scheduler telemetry (windows, steals) changes with the tiling.
    const Config configs[] = {
        {"sequential", {1, 1}, 1, true},
        {"1-D strips", {1, 4}, 4, true},
        {"2x2 tiles (fixed win)", {2, 2}, 4, false},
        {"2x2 tiles (adaptive)", {2, 2}, 4, true},
        {"4x4 tiles, 4 workers", {4, 4}, 4, true},
    };
    for (const Config &cfg : configs)
        runConfig(cfg, bench, module.get(), n);
    return 0;
}
