/**
 * The paper's Figure 1 journey: a scientist's unmodified Fortran loop
 * nest (Flang-style frontend) becomes an asynchronous task graph on the
 * WSE. The example prints the task/callback structure that replaces the
 * timestep loop and validates the numerics against a scalar reference.
 *
 * Build & run:  ./build/example_fortran_jacobian
 */

#include <cmath>
#include <cstdio>

#include "dialects/all.h"
#include "frontends/fortran_frontend.h"
#include "interp/csl_interpreter.h"
#include "model/reference.h"
#include "transforms/pipeline.h"
#include "wse/simulator.h"

using namespace wsc;

int
main()
{
    // The Fortran the scientist wrote (cf. paper Figure 1 / Listing 1).
    const char *source = R"(
      do step = 1, 8
       do i = 2, 11
        do j = 2, 11
         do k = 2, 31
          a(k,j,i) = 0.16666667 * (a(k-1,j,i) + a(k+1,j,i)
                   + a(k,j-1,i) + a(k,j+1,i)
                   + a(k,j,i-1) + a(k,j,i+1))
         enddo
        enddo
       enddo
      enddo
    )";
    printf("--- Fortran input (unmodified) ---\n%s\n", source);

    fe::FortranKernelConfig config{12, 12, 32, 8};
    fe::FortranParseResult parsed =
        fe::parseFortranStencilChecked(source, config);
    if (!parsed) {
        fprintf(stderr, "%s\n", parsed.diagnostic.str().c_str());
        return 1;
    }
    fe::Program program = std::move(*parsed.program);

    ir::Context ctx;
    dialects::registerAllDialects(ctx);
    ir::OwningOp module = program.emit(ctx);
    ir::PipelineResult result = transforms::runPipeline(module.get());
    if (!result) {
        fprintf(stderr, "%s\n", result.str().c_str());
        return 1;
    }

    // Show the actor structure the timestep loop was recast into.
    printf("--- task graph replacing the loop (cf. Figure 1) ---\n");
    module->walk([](ir::Operation *op) {
        if (op->opId() == dialects::csl::kTask)
            printf("  task %-22s (local, id %lld)\n",
                   op->strAttr("sym_name").c_str(),
                   static_cast<long long>(op->intAttr("id")));
        else if (op->opId() == dialects::csl::kFunc)
            printf("  fn   %s\n", op->strAttr("sym_name").c_str());
    });

    // Run on the simulated WSE3 and compare with a scalar reference.
    auto init = [](int x, int y, int z) {
        return static_cast<float>(std::sin(0.2 * x) + std::cos(0.1 * y) +
                                  0.05 * z);
    };
    wse::Simulator sim(wse::ArchParams::wse3(), 12, 12);
    interp::CslProgramInstance instance(sim, module.get());
    instance.setFieldInit("a", init);
    instance.configure();
    instance.launch();
    sim.run();

    model::ReferenceExecutor ref(
        program, [&](int, int64_t x, int64_t y, int64_t z) {
            return init(static_cast<int>(x), static_cast<int>(y),
                        static_cast<int>(z));
        });
    ref.run(8);

    double maxErr = 0;
    for (int x = 0; x < 12; ++x)
        for (int y = 0; y < 12; ++y) {
            std::vector<float> col = instance.readFieldColumn("a", x, y);
            for (size_t z = 0; z < col.size(); ++z)
                maxErr = std::max(
                    maxErr,
                    static_cast<double>(std::abs(
                        col[z] -
                        ref.at(0, x, y, static_cast<int64_t>(z)))));
        }
    printf("--- validation ---\n");
    printf("max |WSE - reference| after 8 steps: %.3g  (%s)\n", maxErr,
           maxErr < 1e-4 ? "OK" : "MISMATCH");
    printf("simulated cycles: %llu; task activations on PE(6,6): %llu\n",
           static_cast<unsigned long long>(sim.now()),
           static_cast<unsigned long long>(
               sim.pe(6, 6).taskActivations()));
    return maxErr < 1e-4 ? 0 : 1;
}
